package join

import (
	"textjoin/internal/relation"
	"textjoin/internal/textidx"
)

// textidxExpr aliases the search expression type for brevity.
type textidxExpr = textidx.Expr

// substPreds builds a tuple's conjunct over the given predicates without
// the text selection. Used by the semi-join batches, which carry the
// selection once per batch.
func (s *Spec) substPreds(tuple relation.Tuple, preds []Pred) (textidx.Expr, bool) {
	var conj textidx.And
	for _, p := range preds {
		e, err := textidx.MakeExactPred(p.Field, tuple[s.offset(p.Column)].Text())
		if err != nil {
			return nil, false
		}
		conj = append(conj, e)
	}
	if len(conj) == 1 {
		return conj[0], true
	}
	return conj, true
}

// orAll builds the disjunction of the expressions (single expressions are
// returned unwrapped).
func orAll(es []textidx.Expr) textidx.Expr {
	if len(es) == 1 {
		return es[0]
	}
	return textidx.Or(es)
}

// andPair conjoins two expressions, flattening nested Ands.
func andPair(a, b textidx.Expr) textidx.Expr {
	var conj textidx.And
	if aa, ok := a.(textidx.And); ok {
		conj = append(conj, aa...)
	} else {
		conj = append(conj, a)
	}
	if bb, ok := b.(textidx.And); ok {
		conj = append(conj, bb...)
	} else {
		conj = append(conj, b)
	}
	return conj
}
