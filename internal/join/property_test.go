package join

import (
	"math/rand"
	"testing"

	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// TestMethodsEquivalentOnRandomWorkloads is the core property test of the
// package: on random corpora, relations and specs, every applicable join
// method returns exactly the multiset of rows the naive full-scan join
// computes.
func TestMethodsEquivalentOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1995))
	vocab := []string{"belief", "update", "text", "retrieval", "pws", "mercury",
		"filtering", "garcia", "gravano", "kao", "radhika", "ullman"}
	fields := []string{"title", "author"}
	word := func() string { return vocab[rng.Intn(len(vocab))] }

	for trial := 0; trial < 60; trial++ {
		// Random corpus.
		ix := textidx.NewIndex()
		nDocs := 1 + rng.Intn(25)
		for d := 0; d < nDocs; d++ {
			doc := textidx.Document{ExtID: "d" + string(rune('a'+d%26)) + string(rune('0'+d/26)), Fields: map[string]string{}}
			for _, f := range fields {
				n := rng.Intn(5)
				text := ""
				for i := 0; i < n; i++ {
					if i > 0 {
						text += " "
					}
					text += word()
				}
				doc.Fields[f] = text
			}
			doc.Fields["year"] = []string{"1993", "1994", "1995"}[rng.Intn(3)]
			ix.MustAdd(doc)
		}
		ix.Freeze()

		// Random relation with 2–3 join columns.
		nCols := 2 + rng.Intn(2)
		cols := make([]relation.Column, nCols)
		for i := range cols {
			cols[i] = relation.Column{Name: "c" + string(rune('0'+i)), Kind: value.KindString}
		}
		tbl := relation.NewTable("r", relation.MustSchema(cols...))
		nRows := 1 + rng.Intn(20)
		for i := 0; i < nRows; i++ {
			row := make(relation.Tuple, nCols)
			for j := range row {
				switch rng.Intn(6) {
				case 0:
					row[j] = value.String(word() + " " + word()) // phrase value
				case 1:
					row[j] = value.String("zzz" + word()) // never matches
				default:
					row[j] = value.String(word())
				}
			}
			tbl.MustInsert(row)
		}

		// Random spec.
		spec := &Spec{Relation: tbl, LongForm: rng.Intn(2) == 0, DocFields: []string{"title"}}
		for i := 0; i < nCols; i++ {
			spec.Preds = append(spec.Preds, Pred{
				Column: "c" + string(rune('0'+i)),
				Field:  fields[rng.Intn(len(fields))],
			})
		}
		if rng.Intn(2) == 0 {
			spec.TextSel = textidx.Term{Field: "year", Word: []string{"1993", "1994", "1995"}[rng.Intn(3)]}
		}

		want, err := NaiveJoin(spec, ix)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}

		methods := []Method{
			TS{},
			SJRTP{},
			PTS{ProbeColumns: []string{"c0"}},
			PTS{ProbeColumns: []string{"c0", "c1"}},
			PTS{ProbeColumns: []string{"c0"}, Lazy: true},
			PTS{ProbeColumns: []string{"c1"}, Grouped: true},
			PRTP{ProbeColumns: []string{"c0"}},
		}
		if spec.TextSel != nil {
			methods = append(methods, RTP{})
		}
		for _, m := range methods {
			svc, err := texservice.NewLocal(ix, texservice.WithShortFields("title", "author", "year"))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Applicable(spec, svc); err != nil {
				continue
			}
			res, err := m.Execute(bg, spec, svc)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m.Name(), err)
			}
			if !SameRows(res.Table, want) {
				t.Fatalf("trial %d %s: %d rows, naive %d rows",
					trial, m.Name(), res.Table.Cardinality(), want.Cardinality())
			}
		}

		// ProbeReduce must be a true semi-join on its probe predicates:
		// the surviving tuples are exactly those with at least one
		// matching document for the probe-column predicates + selection.
		svc, err := texservice.NewLocal(ix, texservice.WithShortFields("title", "author", "year"))
		if err != nil {
			t.Fatal(err)
		}
		probeCols := []string{"c0"}
		reduced, _, err := ProbeReduce(bg, spec, probeCols, svc)
		if err != nil {
			t.Fatalf("trial %d: probe reduce: %v", trial, err)
		}
		probeSpec := &Spec{Relation: tbl, Preds: spec.predsOn(probeCols), TextSel: spec.TextSel}
		probeJoin, err := NaiveJoin(probeSpec, ix)
		if err != nil {
			t.Fatal(err)
		}
		surviving := map[string]bool{}
		for _, row := range probeJoin.Rows {
			surviving[value.KeyOf(row[:nCols]...)] = true
		}
		wantKept := 0
		for _, row := range tbl.Rows {
			if surviving[value.KeyOf(row...)] {
				wantKept++
			}
		}
		if reduced.Cardinality() != wantKept {
			t.Fatalf("trial %d: probe reduce kept %d tuples, want %d",
				trial, reduced.Cardinality(), wantKept)
		}
	}
}

// TestProbeNeverLosesRows: for any probe column choice, P+TS equals TS.
func TestProbeChoicesAllEquivalent(t *testing.T) {
	ix := corpus(t)
	spec := q3Spec(t, true)
	svcTS := service(t, ix)
	want, err := TS{}.Execute(bg, spec, svcTS)
	if err != nil {
		t.Fatal(err)
	}
	for _, probeCols := range [][]string{
		{"name"}, {"member"}, {"name", "member"},
	} {
		svc := service(t, ix)
		res, err := PTS{ProbeColumns: probeCols}.Execute(bg, spec, svc)
		if err != nil {
			t.Fatalf("probe %v: %v", probeCols, err)
		}
		if !SameRows(res.Table, want.Table) {
			t.Errorf("probe %v: result differs from TS", probeCols)
		}
	}
}
