package join

import (
	"context"
	"sync"

	"textjoin/internal/relation"
	"textjoin/internal/texservice"
)

// TS is tuple substitution (§3.1): a nested-loop join with the relation as
// the outer operand, sending one instantiated search per distinct binding
// of the join columns (the variant the paper's experiments use). Results
// are shared by all tuples with the same binding.
//
// Workers > 1 sends the substituted searches from a pool of goroutines —
// the searches are independent, so a loosely coupled text system (in
// particular a remote one, where each search is a network round trip) can
// overlap them. Results are emitted in the same deterministic order as
// the sequential execution.
type TS struct {
	// Workers is the number of concurrent searches (≤1 = sequential).
	Workers int
}

// Name implements Method.
func (TS) Name() string { return "TS" }

// Applicable implements Method: tuple substitution is universally
// applicable.
func (TS) Applicable(spec *Spec, svc texservice.Service) error {
	return spec.Validate()
}

// Execute implements Method.
func (m TS) Execute(ctx context.Context, spec *Spec, svc texservice.Service) (*Result, error) {
	return run(ctx, m.Name(), spec, svc, func(ex *execution) error {
		cols := spec.JoinColumns()
		keys, groups, err := spec.Relation.GroupBy(cols...)
		if err != nil {
			return err
		}
		form := ex.searchForm()
		results, err := searchBindings(ex, keys, groups, m.Workers, form)
		if err != nil {
			return err
		}
		for i, key := range keys {
			if results[i] == nil {
				continue // unsearchable binding: no document can match
			}
			for _, rowIdx := range groups[key] {
				for _, hit := range results[i].Hits {
					ex.emit(spec.Relation.Rows[rowIdx], hit.ExtID, hit.Fields)
				}
			}
		}
		return nil
	})
}

// searchBindings runs the substituted search for every binding key,
// sequentially or with a worker pool, returning results aligned with
// keys (nil for unsearchable bindings).
func searchBindings(ex *execution, keys []string, groups map[string][]int, workers int, form texservice.Form) ([]*texservice.Result, error) {
	spec := ex.spec
	results := make([]*texservice.Result, len(keys))
	exprs := make([]textidxExpr, len(keys))
	for i, key := range keys {
		rep := spec.Relation.Rows[groups[key][0]]
		if expr, ok := spec.SubstExpr(rep, spec.Preds); ok {
			exprs[i] = expr
		}
	}
	if workers <= 1 {
		for i, expr := range exprs {
			if expr == nil {
				continue
			}
			res, err := ex.svc.Search(ex.ctx, expr, form)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := ex.svc.Search(ex.ctx, exprs[i], form)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					results[i] = res
				}
				mu.Unlock()
			}
		}()
	}
	for i, expr := range exprs {
		if expr != nil {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

var _ Method = TS{}

// RTP is relational text processing (§3.2): a single search carrying only
// the text selection; the returned short-form documents are matched
// against the relation with SQL string matching.
type RTP struct{}

// Name implements Method.
func (RTP) Name() string { return "RTP" }

// Applicable implements Method: RTP needs a text selection (it sends
// nothing else to the text system) and join-predicate fields that the
// short form carries.
func (RTP) Applicable(spec *Spec, svc texservice.Service) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.TextSel == nil {
		return errNoSelection
	}
	return requireShortFields(spec.Preds, svc)
}

// Execute implements Method.
func (RTP) Execute(ctx context.Context, spec *Spec, svc texservice.Service) (*Result, error) {
	if err := (RTP{}).Applicable(spec, svc); err != nil {
		return nil, err
	}
	return run(ctx, RTP{}.Name(), spec, svc, func(ex *execution) error {
		res, err := svc.Search(ex.ctx, spec.TextSel, texservice.FormShort)
		if err != nil {
			return err
		}
		svc.Meter().ChargeRTP(ex.ctx, len(res.Hits))
		return matchHitsRelationally(ex, spec.Relation.Rows, res.Hits, spec.Preds)
	})
}

var _ Method = RTP{}

// matchHitsRelationally emits a row for every (tuple, hit) pair satisfying
// the predicates by string matching, fetching long forms through the cache
// when the spec requires them.
func matchHitsRelationally(ex *execution, tuples []relation.Tuple, hits []texservice.Hit, preds []Pred) error {
	for _, tuple := range tuples {
		for _, hit := range hits {
			if !ex.spec.matchesRelationally(tuple, preds, hit.Fields) {
				continue
			}
			if err := ex.emitHit(tuple, hit, false); err != nil {
				return err
			}
		}
	}
	return nil
}
