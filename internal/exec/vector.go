package exec

import (
	"context"
	"fmt"
	"time"

	"textjoin/internal/plan"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/vec"
)

// This file is the vectorized execution path: when Executor.Vectorized is
// set, every maximal relational subtree (Scan/Join/Project chains) runs as
// a pipeline of batch operators from internal/vec instead of the
// table-at-a-time row operators. Probe and TextJoin nodes stay on the row
// path — they talk to the text service tuple-wise by nature — and act as
// pipeline boundaries: their (row) result feeds the enclosing batch
// pipeline through a TableScan, and their own relational inputs re-enter
// the vectorized path recursively.
//
// EXPLAIN ANALYZE semantics are preserved: each relational operator is
// wrapped so that, at end of stream, it records cumulative actuals for its
// subtree (rows, batches, wall time from operator construction, query-
// meter usage delta) — the same cumulative-per-subtree semantics as the
// row path, so estimate and actual stay directly comparable per node.

// evalVec evaluates a relational subtree with batch operators and
// materializes the result back to a row table at the subtree root.
func (e *Executor) evalVec(ctx context.Context, n plan.Node, st *RunStats) (*relation.Table, error) {
	op, err := e.buildVecOp(ctx, n, st)
	if err != nil {
		return nil, err
	}
	return vec.Materialize(vecTableName(n), op)
}

// vecTableName names the materialized result of a vectorized subtree.
func vecTableName(n plan.Node) string {
	if s, ok := n.(*plan.Scan); ok {
		return s.Table
	}
	return "vec"
}

// buildVecOp translates a plan subtree into a batch operator tree. Nodes
// outside the relational core (Probe, TextJoin) are evaluated through the
// ordinary row path — with their full instrumentation — and re-enter the
// pipeline as a scan of their materialized result.
func (e *Executor) buildVecOp(ctx context.Context, n plan.Node, st *RunStats) (vec.Operator, error) {
	an := AnalysisFrom(ctx)
	// Cumulative-actuals baseline: taken before children are built, so
	// eagerly evaluated boundary descendants (probes, text joins) are
	// charged to this subtree exactly as the row path would.
	var w *vecInstrument
	if an != nil {
		w = &vecInstrument{n: n, an: an, st: st, start: time.Now(),
			probesBefore: st.Probes, roundsBefore: st.BatchRounds}
		if qm := texservice.QueryMeterFrom(ctx); qm != nil {
			w.qm = qm
			w.usageBefore = qm.Snapshot()
		}
	}
	var op vec.Operator
	switch n := n.(type) {
	case *plan.Scan:
		base, ok := e.Cat.Tables[n.Table]
		if !ok {
			return nil, fmt.Errorf("exec: unknown table %q", n.Table)
		}
		pred := n.Pred
		if _, isTrue := pred.(relation.True); isTrue {
			pred = nil
		}
		var err error
		op, err = vec.NewTableScan(base.Qualified(), n.Cols, pred)
		if err != nil {
			return nil, err
		}
	case *plan.Join:
		left, err := e.buildVecOp(ctx, n.Left, st)
		if err != nil {
			return nil, err
		}
		right, err := e.buildVecOp(ctx, n.Right, st)
		if err != nil {
			return nil, err
		}
		if len(n.Equi) > 0 {
			op, err = vec.NewHashJoin(left, right, n.Equi, n.Residual)
		} else {
			op, err = vec.NewNestedLoop(left, right, n.Residual)
		}
		if err != nil {
			return nil, err
		}
	case *plan.Project:
		in, err := e.buildVecOp(ctx, n.Input, st)
		if err != nil {
			return nil, err
		}
		op, err = vec.NewProject(in, n.Columns)
		if err != nil {
			return nil, err
		}
	default:
		// Pipeline boundary: run the node on the row path (recording its
		// own actuals), then stream its materialized result.
		tbl, err := e.eval(ctx, n, st)
		if err != nil {
			return nil, err
		}
		scan, err := vec.NewTableScan(tbl, nil, nil)
		if err != nil {
			return nil, err
		}
		// The boundary's row-path record already has rows/time/usage;
		// merge in only the batch count of feeding it to the pipeline.
		return &boundaryCounter{Operator: scan, n: n, an: an, st: st}, nil
	}
	if w == nil {
		return &batchCounter{Operator: op, st: st}, nil
	}
	w.Operator = op
	return w, nil
}

// batchCounter counts emitted batches into RunStats when no analysis is
// attached — the light wrapper for the zero-overhead path.
type batchCounter struct {
	vec.Operator
	st *RunStats
}

func (c *batchCounter) Next() (*vec.Batch, error) {
	b, err := c.Operator.Next()
	if b != nil {
		c.st.Batches++
	}
	return b, err
}

// boundaryCounter attributes the batches that feed a row-path boundary
// node's result into the pipeline to that node's analysis entry.
type boundaryCounter struct {
	vec.Operator
	n       plan.Node
	an      *Analysis
	st      *RunStats
	batches int
	done    bool
}

func (c *boundaryCounter) Next() (*vec.Batch, error) {
	b, err := c.Operator.Next()
	if err != nil {
		return nil, err
	}
	if b != nil {
		c.batches++
		c.st.Batches++
		return b, nil
	}
	if !c.done {
		c.done = true
		if c.an != nil {
			c.an.addBatches(c.n, c.batches)
		}
	}
	return nil, nil
}

// vecInstrument records cumulative per-subtree actuals for one relational
// operator at end of stream: live rows and batches emitted, wall time
// since operator construction, and the query-meter usage delta (covering
// any boundary descendants evaluated eagerly during construction).
type vecInstrument struct {
	vec.Operator
	n  plan.Node
	an *Analysis
	st *RunStats
	qm *texservice.Meter

	start        time.Time
	usageBefore  texservice.Usage
	probesBefore int
	roundsBefore int

	rows    int
	batches int
	done    bool
}

func (w *vecInstrument) Next() (*vec.Batch, error) {
	b, err := w.Operator.Next()
	if err != nil {
		return nil, err
	}
	if b != nil {
		w.rows += b.Len()
		w.batches++
		w.st.Batches++
		return b, nil
	}
	if !w.done {
		w.done = true
		var usage texservice.Usage
		if w.qm != nil {
			usage = w.qm.Snapshot().Sub(w.usageBefore)
		}
		w.an.record(w.n, NodeActual{
			Rows:        w.rows,
			Elapsed:     time.Since(w.start),
			Usage:       usage,
			Probes:      w.st.Probes - w.probesBefore,
			BatchRounds: w.st.BatchRounds - w.roundsBefore,
			Batches:     w.batches,
		})
	}
	return nil, nil
}
