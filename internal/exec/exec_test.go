package exec

import (
	"testing"

	"textjoin/internal/cost"
	"textjoin/internal/join"
	"textjoin/internal/plan"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func fixture(t testing.TB) (*sqlparse.Catalog, *texservice.Local, *textidx.Index) {
	t.Helper()
	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
		relation.Column{Name: "year", Kind: value.KindInt},
	))
	for _, r := range [][3]interface{}{
		{"alice", "cs", 4}, {"bob", "ee", 2}, {"carol", "cs", 5}, {"dave", "me", 4},
	} {
		student.MustInsert(relation.Tuple{
			value.String(r[0].(string)), value.String(r[1].(string)), value.Int(int64(r[2].(int)))})
	}
	faculty := relation.NewTable("faculty", relation.MustSchema(
		relation.Column{Name: "fname", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	faculty.MustInsert(relation.Tuple{value.String("garcia"), value.String("cs")})
	faculty.MustInsert(relation.Tuple{value.String("widom"), value.String("ee")})

	ix := textidx.NewIndex()
	docs := []textidx.Document{
		{ExtID: "d0", Fields: map[string]string{"title": "systems", "author": "alice garcia", "year": "1993"}},
		{ExtID: "d1", Fields: map[string]string{"title": "databases", "author": "carol widom", "year": "1993"}},
		{ExtID: "d2", Fields: map[string]string{"title": "networks", "author": "garcia", "year": "1994"}},
		{ExtID: "d3", Fields: map[string]string{"title": "systems", "author": "dave widom", "year": "1993"}},
	}
	for _, d := range docs {
		ix.MustAdd(d)
	}
	ix.Freeze()
	svc, err := texservice.NewLocal(ix, texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		t.Fatal(err)
	}
	cat := &sqlparse.Catalog{
		Tables: map[string]*relation.Table{"student": student, "faculty": faculty},
		Text: map[string]*sqlparse.TextSourceInfo{
			"mercury": {Name: "mercury", Fields: []string{"title", "author", "year"}},
		},
	}
	return cat, svc, ix
}

func foreignPreds() []sqlparse.ForeignPred {
	return []sqlparse.ForeignPred{
		{Table: "student", Column: "student.name", Field: "author"},
		{Table: "faculty", Column: "faculty.fname", Field: "author"},
	}
}

// handPlan builds a full PrL tree by hand: scan(student) → probe →
// join(faculty) → text join → project.
func handPlan(method cost.Method, probeCols []string) plan.Node {
	scanS := &plan.Scan{Table: "student",
		Pred: relation.ColConst{Col: "student.year", Op: relation.OpGt, Const: value.Int(3)}}
	probe := &plan.Probe{Input: scanS,
		Preds: []sqlparse.ForeignPred{{Table: "student", Column: "student.name", Field: "author"}}}
	scanF := &plan.Scan{Table: "faculty", Pred: relation.True{}}
	j := &plan.Join{Left: probe, Right: scanF,
		Residual:  relation.ColCol{Left: "student.dept", Op: relation.OpNe, Right: "faculty.dept"},
		Algorithm: "nested-loop"}
	tj := &plan.TextJoin{Input: j, Source: "mercury",
		Method:       method,
		ProbeColumns: probeCols,
		Preds:        foreignPreds(),
		LongForm:     true,
		DocFields:    []string{"title"},
	}
	return &plan.Project{Input: tj,
		Columns: []string{"student.name", "mercury.docid", "mercury.title"}}
}

func TestRunHandPlanAllMethods(t *testing.T) {
	cat, _, ix := fixture(t)

	// Ground truth via NaiveQuery on an equivalent analyzed query.
	q, err := sqlparse.Parse(`select student.name, mercury.docid, mercury.title
		from student, faculty, mercury
		where student.year > 3 and student.dept != faculty.dept
		and student.name in mercury.author and faculty.fname in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sqlparse.Analyze(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NaiveQuery(a, cat, ix)
	if err != nil {
		t.Fatal(err)
	}
	if want.Cardinality() == 0 {
		t.Fatal("fixture yields empty result; test is vacuous")
	}

	cases := []struct {
		method    cost.Method
		probeCols []string
	}{
		{cost.MethodTS, nil},
		{cost.MethodSJRTP, nil},
		{cost.MethodPTS, []string{"student.name"}},
		{cost.MethodPRTP, []string{"faculty.fname"}},
	}
	for _, c := range cases {
		cat2, svc2, _ := fixture(t)
		ex := &Executor{Cat: cat2, Svc: svc2}
		got, st, err := ex.Run(bg, handPlan(c.method, c.probeCols))
		if err != nil {
			t.Fatalf("%v: %v", c.method, err)
		}
		if !join.SameRows(got, want) {
			t.Fatalf("%v: %d rows, want %d", c.method, got.Cardinality(), want.Cardinality())
		}
		if st.Usage.Searches == 0 {
			t.Fatalf("%v: no searches recorded", c.method)
		}
		if st.Probes == 0 {
			t.Fatalf("%v: plan probe node sent no probes", c.method)
		}
	}
}

func TestRunScanAndProject(t *testing.T) {
	cat, svc, _ := fixture(t)
	ex := &Executor{Cat: cat, Svc: svc}
	p := &plan.Project{
		Input: &plan.Scan{Table: "student",
			Pred: relation.ColConst{Col: "student.dept", Op: relation.OpEq, Const: value.String("cs")}},
		Columns: []string{"student.name"},
	}
	out, st, err := ex.Run(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 2 || out.Schema.Arity() != 1 {
		t.Fatalf("result: %v", out)
	}
	if st.Usage.Searches != 0 {
		t.Fatal("relational-only plan touched the text service")
	}
}

func TestRunHashJoin(t *testing.T) {
	cat, svc, _ := fixture(t)
	ex := &Executor{Cat: cat, Svc: svc}
	p := &plan.Join{
		Left:      &plan.Scan{Table: "student"},
		Right:     &plan.Scan{Table: "faculty"},
		Equi:      []relation.EquiJoinCond{{Left: "student.dept", Right: "faculty.dept"}},
		Algorithm: "hash",
	}
	out, _, err := ex.Run(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	// cs: alice, carol × garcia; ee: bob × widom.
	if out.Cardinality() != 3 {
		t.Fatalf("hash join rows = %d", out.Cardinality())
	}
}

func TestRunErrors(t *testing.T) {
	cat, svc, _ := fixture(t)
	ex := &Executor{Cat: cat, Svc: svc}
	if _, _, err := ex.Run(bg, &plan.Scan{Table: "nosuch"}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, _, err := ex.Run(bg, &plan.TextJoin{
		Input: &plan.Scan{Table: "student"}, Method: cost.Method(99),
	}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, _, err := ex.Run(bg, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestNaiveQueryPureRelational(t *testing.T) {
	cat, _, ix := fixture(t)
	q, err := sqlparse.Parse(`select student.name, faculty.fname from student, faculty
		where student.dept = faculty.dept`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sqlparse.Analyze(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NaiveQuery(a, cat, ix)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 3 {
		t.Fatalf("rows = %d", out.Cardinality())
	}
}

func TestQualifyDocColumns(t *testing.T) {
	tbl := relation.NewTable("x", relation.MustSchema(
		relation.Column{Name: "a", Kind: value.KindString},
		relation.Column{Name: "docid", Kind: value.KindString},
		relation.Column{Name: "title", Kind: value.KindString},
	))
	out := qualifyDocColumns(tbl, 1, "mercury", []string{"title"})
	if out.Schema.ColumnIndex("mercury.docid") != 1 || out.Schema.ColumnIndex("mercury.title") != 2 {
		t.Fatalf("schema = %v", out.Schema)
	}
	if out.Schema.ColumnIndex("a") != 0 {
		t.Fatal("relational column renamed")
	}
	// Source table schema untouched.
	if tbl.Schema.ColumnIndex("docid") != 1 {
		t.Fatal("original schema mutated")
	}
}

func TestRunWithoutServiceFails(t *testing.T) {
	cat, _, _ := fixture(t)
	ex := &Executor{Cat: cat} // no Svc, no Services
	_, _, err := ex.Run(bg, &plan.TextJoin{
		Input:  &plan.Scan{Table: "student"},
		Source: "mercury",
		Method: cost.MethodTS,
		Preds:  foreignPreds()[:1],
	})
	if err == nil {
		t.Fatal("text join without a service accepted")
	}
	// Relational-only plans still work with no services at all.
	out, _, err := ex.Run(bg, &plan.Scan{Table: "student"})
	if err != nil || out.Cardinality() == 0 {
		t.Fatalf("relational plan without services: %v", err)
	}
}
