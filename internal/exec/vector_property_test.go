package exec

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"textjoin/internal/cost"
	"textjoin/internal/join"
	"textjoin/internal/plan"
	"textjoin/internal/relation"
	"textjoin/internal/shard"
	"textjoin/internal/sqlparse"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// This file is the equivalence harness gating the vectorized execution
// core: on random corpora, tables and plans, the vectorized engine and the
// row engine must produce exactly the same rows as a from-first-principles
// oracle (relational primitives + join.NaiveJoin), for every foreign-join
// method, against 1-, 2- and 4-shard federations with 30% of service calls
// failing transiently under a retry budget that outlasts them. Every
// execution also checks exact meter mirroring: the per-query meter's
// charges must equal the shared root meters' delta. Plans go through
// plan.Prune first, so projection pruning and filter pushdown are under
// the same gate.

// vectorPropertySeed fixes the harness's randomness so CI failures
// reproduce (scripts/check.sh runs the suite under -race with this seed).
const vectorPropertySeed = 71

// vecTrial is one random workload: a corpus, a two-table catalog, and the
// ingredients of a Scan → Join → TextJoin → Project plan over them.
type vecTrial struct {
	ix       *textidx.Index
	cat      *sqlparse.Catalog
	predA    relation.Predicate // pushed-down selection on table r
	equi     []relation.EquiJoinCond
	residual relation.Predicate
	preds    []sqlparse.ForeignPred
	sel      textidx.Expr
	longForm bool
	outCols  []string
}

func (tr *vecTrial) docFields() []string {
	if tr.longForm {
		return []string{"title"}
	}
	return nil
}

// randomVecTrial builds one random workload.
func randomVecTrial(rng *rand.Rand) *vecTrial {
	vocab := []string{"belief", "update", "text", "retrieval", "pws", "mercury",
		"filtering", "garcia", "gravano", "kao", "radhika", "ullman"}
	word := func() string { return vocab[rng.Intn(len(vocab))] }
	textVal := func() value.Value {
		switch rng.Intn(6) {
		case 0:
			return value.String(word() + " " + word()) // phrase value
		case 1:
			return value.String("zzz" + word()) // never matches
		default:
			return value.String(word())
		}
	}
	grp := func() value.Value {
		return value.String([]string{"g0", "g1", "g2"}[rng.Intn(3)])
	}

	ix := textidx.NewIndex()
	for d, n := 0, 1+rng.Intn(25); d < n; d++ {
		doc := textidx.Document{ExtID: fmt.Sprintf("d%02d", d), Fields: map[string]string{}}
		for _, f := range []string{"title", "author"} {
			words := make([]string, rng.Intn(5))
			for i := range words {
				words[i] = word()
			}
			text := ""
			for i, w := range words {
				if i > 0 {
					text += " "
				}
				text += w
			}
			doc.Fields[f] = text
		}
		doc.Fields["year"] = []string{"1993", "1994", "1995"}[rng.Intn(3)]
		ix.MustAdd(doc)
	}
	ix.Freeze()

	r := relation.NewTable("r", relation.MustSchema(
		relation.Column{Name: "c0", Kind: value.KindString},
		relation.Column{Name: "c1", Kind: value.KindString},
		relation.Column{Name: "c2", Kind: value.KindInt},
	))
	for i, n := 0, 1+rng.Intn(15); i < n; i++ {
		r.MustInsert(relation.Tuple{textVal(), grp(), value.Int(int64(rng.Intn(6)))})
	}
	s := relation.NewTable("s", relation.MustSchema(
		relation.Column{Name: "d0", Kind: value.KindString},
		relation.Column{Name: "d1", Kind: value.KindString},
	))
	for i, n := 0, 1+rng.Intn(10); i < n; i++ {
		s.MustInsert(relation.Tuple{textVal(), grp()})
	}

	tr := &vecTrial{
		ix: ix,
		cat: &sqlparse.Catalog{
			Tables: map[string]*relation.Table{"r": r, "s": s},
			Text: map[string]*sqlparse.TextSourceInfo{
				"mercury": {Name: "mercury", Fields: []string{"title", "author", "year"}},
			},
		},
		predA: relation.True{},
		preds: []sqlparse.ForeignPred{
			{Table: "r", Column: "r.c0", Field: "author"},
			{Table: "s", Column: "s.d0", Field: []string{"title", "author"}[rng.Intn(2)]},
		},
		longForm: rng.Intn(2) == 0,
		outCols:  []string{"r.c0", "s.d0", "mercury.docid"},
	}
	if rng.Intn(2) == 0 {
		tr.predA = relation.ColConst{Col: "r.c2", Op: relation.OpGt, Const: value.Int(int64(rng.Intn(4)))}
	}
	switch rng.Intn(3) {
	case 0:
		tr.equi = []relation.EquiJoinCond{{Left: "r.c1", Right: "s.d1"}}
	case 1:
		tr.residual = relation.ColCol{Left: "r.c1", Op: relation.OpNe, Right: "s.d1"}
	}
	if rng.Intn(2) == 0 {
		tr.sel = textidx.Term{Field: "year", Word: []string{"1993", "1994", "1995"}[rng.Intn(3)]}
	}
	if tr.longForm {
		tr.outCols = append(tr.outCols, "mercury.title")
	}
	return tr
}

// plan builds the physical plan for one method, pruned the way the engine
// prunes before execution (projection pruning + filter pushdown).
func (tr *vecTrial) plan(method cost.Method, probeCols []string) plan.Node {
	algorithm := "nested-loop"
	if len(tr.equi) > 0 {
		algorithm = "hash"
	}
	root := &plan.Project{
		Input: &plan.TextJoin{
			Input: &plan.Join{
				Left:      &plan.Scan{Table: "r", Pred: tr.predA},
				Right:     &plan.Scan{Table: "s", Pred: relation.True{}},
				Equi:      tr.equi,
				Residual:  tr.residual,
				Algorithm: algorithm,
			},
			Source:       "mercury",
			Method:       method,
			ProbeColumns: probeCols,
			Preds:        tr.preds,
			TextSel:      tr.sel,
			LongForm:     tr.longForm,
			DocFields:    tr.docFields(),
		},
		Columns: tr.outCols,
	}
	return plan.Prune(root, func(name string) (*relation.Schema, bool) {
		t, ok := tr.cat.Tables[name]
		if !ok {
			return nil, false
		}
		return t.Schema.Qualify(t.Name), true
	})
}

// oracle evaluates the trial's query from first principles: relational
// primitives for the scans and join, join.NaiveJoin (full index scan) for
// the foreign join, then the projection.
func (tr *vecTrial) oracle() (*relation.Table, error) {
	a, err := tr.cat.Tables["r"].Qualified().Select(tr.predA)
	if err != nil {
		return nil, err
	}
	b := tr.cat.Tables["s"].Qualified()
	var joined *relation.Table
	if len(tr.equi) > 0 {
		joined, err = relation.HashJoin(a, b, tr.equi, nil)
	} else {
		pred := tr.residual
		if pred == nil {
			pred = relation.True{}
		}
		joined, err = relation.NestedLoopJoin(a, b, pred)
	}
	if err != nil {
		return nil, err
	}
	spec := &join.Spec{
		Relation:  joined,
		Preds:     toJoinPreds(tr.preds),
		TextSel:   tr.sel,
		LongForm:  tr.longForm,
		DocFields: tr.docFields(),
	}
	nv, err := join.NaiveJoin(spec, tr.ix)
	if err != nil {
		return nil, err
	}
	return qualifyDocColumns(nv, joined.Schema.Arity(), "mercury", tr.docFields()).Project(tr.outCols...)
}

// faultyShardedExec builds an n-shard federation over ix with every shard
// failing 30% of calls transiently, each wrapped in a retry budget large
// enough to always outlast the faults.
func faultyShardedExec(t *testing.T, ix *textidx.Index, n int, seed int64) *shard.Sharded {
	t.Helper()
	svc, err := shard.NewLocalCluster(ix, n,
		[]texservice.LocalOption{texservice.WithShortFields("title", "author", "year")},
		func(k int, s texservice.Service) texservice.Service {
			return texservice.NewFaulty(s, texservice.FaultConfig{
				ErrorRate: 0.3, Seed: seed + int64(k),
			})
		},
		shard.WithRetry(texservice.RetryPolicy{
			MaxAttempts: 25, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestVectorizedEquivalence is the harness proper: every join method ×
// {vectorized, row} engines × shard counts {1,2,4} × injected faults, all
// asserted equivalent to the oracle, with exact meter mirroring on every
// run and batch accounting consistent with the engine in use.
func TestVectorizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(vectorPropertySeed))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		tr := randomVecTrial(rng)
		want, err := tr.oracle()
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}

		type mcase struct {
			method    cost.Method
			probeCols []string
		}
		cases := []mcase{
			{cost.MethodTS, nil},
			{cost.MethodSJRTP, nil},
			{cost.MethodPTS, []string{"r.c0"}},
			{cost.MethodPRTP, []string{"s.d0"}},
			{cost.MethodPTSBatch, []string{"r.c0"}},
			{cost.MethodPRTPBatch, []string{"s.d0"}},
		}
		if tr.sel != nil {
			cases = append(cases, mcase{cost.MethodRTP, nil})
		}
		for _, n := range []int{1, 2, 4} {
			seed := rng.Int63()
			for _, c := range cases {
				pl := tr.plan(c.method, c.probeCols)
				var vecRows *relation.Table
				for _, vectorized := range []bool{true, false} {
					svc := faultyShardedExec(t, tr.ix, n, seed)
					ex := &Executor{Cat: tr.cat, Svc: svc, Vectorized: vectorized}
					rootBefore := svc.Meter().Snapshot()
					got, st, err := ex.Run(bg, pl)
					if err != nil {
						t.Fatalf("trial %d n=%d %v vectorized=%v: %v", trial, n, c.method, vectorized, err)
					}
					if !join.SameRows(got, want) {
						t.Errorf("trial %d n=%d %v vectorized=%v: %d rows, oracle %d rows",
							trial, n, c.method, vectorized, got.Cardinality(), want.Cardinality())
					}
					// Exact meter mirroring: the per-query meter's charges
					// (st.Usage) must equal the shared root meters' delta —
					// the services are fresh, so nothing else charged them.
					if delta := svc.Meter().Snapshot().Sub(rootBefore); delta != st.Usage {
						t.Errorf("trial %d n=%d %v vectorized=%v: query meter %+v != root meter delta %+v",
							trial, n, c.method, vectorized, st.Usage, delta)
					}
					if vectorized {
						if got.Cardinality() > 0 && st.Batches == 0 {
							t.Errorf("trial %d n=%d %v: vectorized run emitted rows but no batches",
								trial, n, c.method)
						}
						vecRows = got
					} else {
						if st.Batches != 0 {
							t.Errorf("trial %d n=%d %v: row engine reported %d batches",
								trial, n, c.method, st.Batches)
						}
						if vecRows != nil && !join.SameRows(got, vecRows) {
							t.Errorf("trial %d n=%d %v: row engine diverged from vectorized engine",
								trial, n, c.method)
						}
					}
				}
			}
		}
	}
}
