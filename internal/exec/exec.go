// Package exec runs physical plans produced by the optimizer against the
// relational tables and the external text service. It also provides a
// naive whole-query evaluator used as the correctness oracle in tests.
package exec

import (
	"context"
	"fmt"
	"time"

	"textjoin/internal/cost"
	"textjoin/internal/join"
	"textjoin/internal/obs"
	"textjoin/internal/plan"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/texservice"
)

// Executor evaluates plan trees. Svc serves every text source; when a
// query spans several sources with distinct backends, Services maps each
// source name to its own service (falling back to Svc for absent names).
// With Vectorized set, relational subtrees (scans, joins, projections)
// run as column-oriented batch pipelines (internal/vec) instead of the
// table-at-a-time row operators; results are identical either way.
type Executor struct {
	Cat        *sqlparse.Catalog
	Svc        texservice.Service
	Services   map[string]texservice.Service
	Vectorized bool
}

// svcFor resolves the service for a text source.
func (e *Executor) svcFor(source string) (texservice.Service, error) {
	if s, ok := e.Services[source]; ok {
		return s, nil
	}
	if e.Svc != nil {
		return e.Svc, nil
	}
	return nil, fmt.Errorf("exec: no service for text source %q", source)
}

// RunStats aggregates execution-wide statistics.
type RunStats struct {
	// Usage is the total text-service resource consumption of the whole
	// run, summed over every service involved.
	Usage texservice.Usage
	// Probes counts probe round trips from Probe nodes and probe-based
	// foreign-join methods (a batched search covering many bindings is
	// one round trip).
	Probes int
	// BatchRounds is how many of those round trips were batched
	// (multi-binding) — zero under per-tuple probing.
	BatchRounds int
	// Batches counts the column batches the vectorized operators emitted
	// over the whole run; zero on the pure row path.
	Batches int
}

// Run evaluates the plan and returns the result table along with the
// text-service usage it caused. Usage is accounted through a per-query
// meter carried in the context (texservice.WithQueryMeter): every charge
// the run causes on the shared services' meters is mirrored there, so the
// measurement is exact even when other queries hammer the same services
// concurrently — a before/after snapshot of the shared meters would bill
// this run for everyone's interleaved work. If the caller has not
// installed a query meter, Run installs a fresh one for the duration.
func (e *Executor) Run(ctx context.Context, n plan.Node) (*relation.Table, RunStats, error) {
	qm := texservice.QueryMeterFrom(ctx)
	if qm == nil {
		qm = texservice.NewMeter(texservice.DefaultCosts())
		ctx = texservice.WithQueryMeter(ctx, qm)
	}
	before := qm.Snapshot()
	st := &RunStats{}
	out, err := e.eval(ctx, n, st)
	if err != nil {
		return nil, RunStats{}, err
	}
	st.Usage = qm.Snapshot().Sub(before)
	return out, *st, nil
}

// eval evaluates one node, wrapping evalNode with the per-node
// instrumentation: a span named "exec.<op>" and, when the context
// carries an Analysis, a before/after query-meter snapshot that yields
// the node's cumulative actual usage for EXPLAIN ANALYZE. With neither a
// recorder nor an analysis attached, it falls through to evalNode after
// two context lookups — the zero-overhead path.
func (e *Executor) eval(ctx context.Context, n plan.Node, st *RunStats) (*relation.Table, error) {
	an := AnalysisFrom(ctx)
	if an == nil && obs.SpanFrom(ctx) == nil {
		return e.evalNode(ctx, n, st)
	}
	sctx, sp := obs.StartSpan(ctx, "exec."+opName(n))
	qm := texservice.QueryMeterFrom(sctx)
	var before texservice.Usage
	if qm != nil {
		before = qm.Snapshot()
	}
	probesBefore, roundsBefore := st.Probes, st.BatchRounds
	start := time.Now()
	out, err := e.evalNode(sctx, n, st)
	elapsed := time.Since(start)
	var usage texservice.Usage
	if qm != nil {
		usage = qm.Snapshot().Sub(before)
	}
	rows := 0
	if out != nil {
		rows = out.Cardinality()
	}
	if sp != nil {
		sp.SetAttr(obs.Str("op", n.Describe()),
			obs.F64("est_card", n.Card()), obs.F64("est_cost", n.Cost()),
			obs.Int("rows", rows), obs.F64("text_cost", usage.Cost))
		if err != nil {
			// Error traces are always retained by the trace store's tail
			// sampler; mark the operator that failed so the retained tree
			// pinpoints it.
			sp.SetAttr(obs.Str("err", err.Error()))
		}
		sp.End()
	}
	if an != nil && err == nil {
		an.record(n, NodeActual{Rows: rows, Elapsed: elapsed, Usage: usage,
			Probes: st.Probes - probesBefore, BatchRounds: st.BatchRounds - roundsBefore})
	}
	return out, err
}

// opName names a node's span.
func opName(n plan.Node) string {
	switch n := n.(type) {
	case *plan.Scan:
		return "scan"
	case *plan.Probe:
		return "probe"
	case *plan.Join:
		return "join"
	case *plan.TextJoin:
		return fmt.Sprintf("textjoin.%v", n.Method)
	case *plan.Project:
		return "project"
	default:
		return fmt.Sprintf("%T", n)
	}
}

func (e *Executor) evalNode(ctx context.Context, n plan.Node, st *RunStats) (*relation.Table, error) {
	switch n := n.(type) {
	case *plan.Scan:
		if e.Vectorized {
			return e.evalVec(ctx, n, st)
		}
		return e.evalScan(n)
	case *plan.Probe:
		return e.evalProbe(ctx, n, st)
	case *plan.Join:
		if e.Vectorized {
			return e.evalVec(ctx, n, st)
		}
		return e.evalJoin(ctx, n, st)
	case *plan.TextJoin:
		return e.evalTextJoin(ctx, n, st)
	case *plan.Project:
		if e.Vectorized {
			return e.evalVec(ctx, n, st)
		}
		in, err := e.eval(ctx, n.Input, st)
		if err != nil {
			return nil, err
		}
		return in.Project(n.Columns...)
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

func (e *Executor) evalScan(n *plan.Scan) (*relation.Table, error) {
	base, ok := e.Cat.Tables[n.Table]
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", n.Table)
	}
	q := base.Qualified()
	if n.Pred != nil {
		var err error
		q, err = q.Select(n.Pred)
		if err != nil {
			return nil, err
		}
	}
	if n.Cols != nil {
		return q.Project(n.Cols...)
	}
	return q, nil
}

func (e *Executor) evalProbe(ctx context.Context, n *plan.Probe, st *RunStats) (*relation.Table, error) {
	in, err := e.eval(ctx, n.Input, st)
	if err != nil {
		return nil, err
	}
	svc, err := e.svcFor(n.Source)
	if err != nil {
		return nil, err
	}
	spec := &join.Spec{
		Relation: in,
		Preds:    toJoinPreds(n.Preds),
		TextSel:  n.TextSel,
	}
	cols := probeColumns(n.Preds)
	out, stats, err := join.ProbeReduceOpts(ctx, spec, cols, svc, join.ProbeOpts{Batched: n.Batched})
	if err != nil {
		return nil, err
	}
	st.Probes += stats.Probes
	st.BatchRounds += stats.BatchRounds
	return out, nil
}

func (e *Executor) evalJoin(ctx context.Context, n *plan.Join, st *RunStats) (*relation.Table, error) {
	left, err := e.eval(ctx, n.Left, st)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(ctx, n.Right, st)
	if err != nil {
		return nil, err
	}
	if len(n.Equi) > 0 {
		return relation.HashJoin(left, right, n.Equi, n.Residual)
	}
	pred := n.Residual
	if pred == nil {
		pred = relation.True{}
	}
	return relation.NestedLoopJoin(left, right, pred)
}

func (e *Executor) evalTextJoin(ctx context.Context, n *plan.TextJoin, st *RunStats) (*relation.Table, error) {
	in, err := e.eval(ctx, n.Input, st)
	if err != nil {
		return nil, err
	}
	spec := &join.Spec{
		Relation:  in,
		Preds:     toJoinPreds(n.Preds),
		TextSel:   n.TextSel,
		LongForm:  n.LongForm,
		DocFields: n.DocFields,
	}
	method, err := methodFor(n)
	if err != nil {
		return nil, err
	}
	svc, err := e.svcFor(n.Source)
	if err != nil {
		return nil, err
	}
	res, err := method.Execute(ctx, spec, svc)
	if err != nil {
		return nil, err
	}
	st.Probes += res.Stats.Probes
	st.BatchRounds += res.Stats.BatchRounds
	return qualifyDocColumns(res.Table, in.Schema.Arity(), n.Source, n.DocFields), nil
}

// methodFor instantiates the executable join method a TextJoin node names.
func methodFor(n *plan.TextJoin) (join.Method, error) {
	switch n.Method {
	case cost.MethodTS:
		return join.TS{}, nil
	case cost.MethodRTP:
		return join.RTP{}, nil
	case cost.MethodSJRTP:
		return join.SJRTP{}, nil
	case cost.MethodPTS:
		return join.PTS{ProbeColumns: n.ProbeColumns}, nil
	case cost.MethodPRTP:
		return join.PRTP{ProbeColumns: n.ProbeColumns}, nil
	case cost.MethodPTSBatch:
		return join.PTS{ProbeColumns: n.ProbeColumns, Batched: true}, nil
	case cost.MethodPRTPBatch:
		return join.PRTP{ProbeColumns: n.ProbeColumns, Batched: true}, nil
	default:
		return nil, fmt.Errorf("exec: unknown join method %v", n.Method)
	}
}

// toJoinPreds converts classified foreign predicates to the join package's
// form.
func toJoinPreds(preds []sqlparse.ForeignPred) []join.Pred {
	out := make([]join.Pred, len(preds))
	for i, f := range preds {
		out[i] = join.Pred{Column: f.Column, Field: f.Field}
	}
	return out
}

// probeColumns returns the distinct relation columns of the predicates.
func probeColumns(preds []sqlparse.ForeignPred) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range preds {
		if !seen[f.Column] {
			seen[f.Column] = true
			out = append(out, f.Column)
		}
	}
	return out
}

// qualifyDocColumns renames the document columns a foreign join appends
// (docid and the requested fields) to "<source>.<name>", leaving the
// relational columns untouched.
func qualifyDocColumns(t *relation.Table, relArity int, source string, docFields []string) *relation.Table {
	cols := append([]relation.Column(nil), t.Schema.Cols...)
	cols[relArity] = relation.Column{Name: source + "." + join.DocIDColumn, Kind: cols[relArity].Kind}
	for i, f := range docFields {
		idx := relArity + 1 + i
		cols[idx] = relation.Column{Name: source + "." + f, Kind: cols[idx].Kind}
	}
	return &relation.Table{Name: t.Name, Schema: &relation.Schema{Cols: cols}, Rows: t.Rows}
}
