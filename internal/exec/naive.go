package exec

import (
	"fmt"

	"textjoin/internal/join"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/textidx"
)

// NaiveQuery evaluates an analyzed single-source query directly; it is
// NaiveQueryMulti for the common case of at most one text source.
func NaiveQuery(a *sqlparse.Analyzed, cat *sqlparse.Catalog, ix *textidx.Index) (*relation.Table, error) {
	indexes := map[string]*textidx.Index{}
	for _, part := range a.Text {
		indexes[part.Source] = ix
	}
	return NaiveQueryMulti(a, cat, indexes)
}

// NaiveQueryMulti evaluates an analyzed query directly: cross-join all
// tables, apply every relational predicate, evaluate each source's
// foreign join by full scan of its index, and project. It is the
// whole-query oracle for the optimizer/executor tests and needs direct
// index access.
func NaiveQueryMulti(a *sqlparse.Analyzed, cat *sqlparse.Catalog, indexes map[string]*textidx.Index) (*relation.Table, error) {
	var acc *relation.Table
	for _, name := range a.Tables {
		base, ok := cat.Tables[name]
		if !ok {
			return nil, fmt.Errorf("exec: unknown table %q", name)
		}
		t, err := base.Qualified().Select(a.Selections[name])
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = t
			continue
		}
		acc, err = relation.NestedLoopJoin(acc, t, relation.True{})
		if err != nil {
			return nil, err
		}
	}
	// Apply every join edge's conditions as filters over the product.
	var conds relation.And
	for _, e := range a.Edges {
		for _, eq := range e.Equi {
			conds = append(conds, relation.ColCol{Left: eq.Left, Op: relation.OpEq, Right: eq.Right})
		}
		conds = append(conds, e.Residual...)
	}
	if len(conds) > 0 {
		var err error
		acc, err = acc.Select(conds)
		if err != nil {
			return nil, err
		}
	}
	for _, part := range a.Text {
		spec := &join.Spec{
			Relation:  acc,
			Preds:     toJoinPreds(a.ForeignOf(part.Source)),
			TextSel:   part.Sel,
			LongForm:  part.LongForm,
			DocFields: part.DocFields,
		}
		joined, err := join.NaiveJoin(spec, indexes[part.Source])
		if err != nil {
			return nil, err
		}
		acc = qualifyDocColumns(joined, acc.Schema.Arity(), part.Source, part.DocFields)
	}
	return acc.Project(a.OutputCols...)
}
