package exec

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"textjoin/internal/plan"
	"textjoin/internal/texservice"
)

// This file implements EXPLAIN ANALYZE: when an Analysis is carried in
// the run's context, the executor records per-plan-node actuals (rows,
// wall-clock time, text-service usage) alongside the optimizer's
// estimates already stored on each node.
//
// Actual usage is measured as a before/after snapshot of the per-query
// meter around each node's evaluation. The query meter only ever sees
// this query's mirrored charges, so the measurement is exact under
// concurrency; and because a node's evaluation includes its children,
// the actual is cumulative over the subtree — the same semantics as
// plan.Est.EstCost, which makes estimate and actual directly comparable
// at every node.

// NodeActual is what execution actually did at (the subtree rooted at)
// one plan node.
type NodeActual struct {
	Rows    int
	Elapsed time.Duration
	Usage   texservice.Usage
	// Probes is the number of probe round trips this subtree issued;
	// BatchRounds how many of those were batched (multi-binding).
	Probes      int
	BatchRounds int
	// Batches is the number of column batches this node emitted on the
	// vectorized path; zero for row-path nodes.
	Batches int
}

// Analysis collects per-node actuals for one run. Create with
// NewAnalysis, attach with WithAnalysis, and read back with Tree after
// the run. Safe for concurrent recording.
type Analysis struct {
	mu    sync.Mutex
	nodes map[plan.Node]NodeActual
}

// NewAnalysis returns an empty analysis.
func NewAnalysis() *Analysis {
	return &Analysis{nodes: map[plan.Node]NodeActual{}}
}

type analysisKey struct{}

// WithAnalysis attaches an analysis to the context; the executor records
// into it. A nil analysis returns ctx unchanged.
func WithAnalysis(ctx context.Context, a *Analysis) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, analysisKey{}, a)
}

// AnalysisFrom returns the context's analysis, or nil.
func AnalysisFrom(ctx context.Context) *Analysis {
	a, _ := ctx.Value(analysisKey{}).(*Analysis)
	return a
}

// record stores one node's actuals. A node can be recorded twice — once
// by its vectorized operator wrapper (which knows the batch count) and
// once by the row-path eval wrapper at the subtree root (which does not):
// the batch count of the earlier record is preserved.
func (a *Analysis) record(n plan.Node, act NodeActual) {
	a.mu.Lock()
	if prev, ok := a.nodes[n]; ok && act.Batches == 0 {
		act.Batches = prev.Batches
	}
	a.nodes[n] = act
	a.mu.Unlock()
}

// addBatches merges a batch count into a node's existing record without
// touching the row-path actuals (used for pipeline-boundary nodes whose
// rows/time/usage were recorded by the row path).
func (a *Analysis) addBatches(n plan.Node, batches int) {
	a.mu.Lock()
	act := a.nodes[n]
	act.Batches += batches
	a.nodes[n] = act
	a.mu.Unlock()
}

// Actual returns the recorded actuals for a node.
func (a *Analysis) Actual(n plan.Node) (NodeActual, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	act, ok := a.nodes[n]
	return act, ok
}

// AnalyzeNode is one operator of an EXPLAIN ANALYZE tree: the node's
// description, the optimizer's estimates, and execution's actuals. Both
// cost columns are cumulative over the subtree. It is the JSON shape the
// queryd /analyze endpoint serves.
type AnalyzeNode struct {
	Op        string           `json:"op"`
	EstCard   float64          `json:"est_card"`
	EstCost   float64          `json:"est_cost"`
	ActRows   int              `json:"act_rows"`
	ActCost   float64          `json:"act_cost"`
	ActTimeNs int64            `json:"act_time_ns"`
	ActUsage  texservice.Usage `json:"act_usage"`
	// ActProbes/ActBatchRounds attribute probe round trips to the
	// subtree: how many probe searches it issued and how many of those
	// were batched multi-binding rounds.
	ActProbes      int `json:"act_probes"`
	ActBatchRounds int `json:"act_batch_rounds"`
	// ActBatches is the number of column batches the node emitted on the
	// vectorized path (0 = row path).
	ActBatches int            `json:"act_batches,omitempty"`
	Children   []*AnalyzeNode `json:"children,omitempty"`
}

// Tree combines the plan's estimates with the recorded actuals into an
// AnalyzeNode tree mirroring the plan's shape.
func (a *Analysis) Tree(root plan.Node) *AnalyzeNode {
	if root == nil {
		return nil
	}
	act, _ := a.Actual(root)
	out := &AnalyzeNode{
		Op:        root.Describe(),
		EstCard:   root.Card(),
		EstCost:   root.Cost(),
		ActRows:   act.Rows,
		ActCost:   act.Usage.Cost,
		ActTimeNs: act.Elapsed.Nanoseconds(),
		ActUsage:  act.Usage,

		ActProbes:      act.Probes,
		ActBatchRounds: act.BatchRounds,
		ActBatches:     act.Batches,
	}
	for _, c := range root.Children() {
		out.Children = append(out.Children, a.Tree(c))
	}
	return out
}

// FormatAnalyze renders the EXPLAIN ANALYZE tree as aligned text: the
// operator column is padded to a common width so the estimate and actual
// columns line up, estimated cost and actual cost side by side on every
// line.
func FormatAnalyze(w io.Writer, root *AnalyzeNode) {
	if root == nil {
		return
	}
	type line struct {
		op   string
		node *AnalyzeNode
	}
	var lines []line
	var collect func(n *AnalyzeNode, depth int)
	collect = func(n *AnalyzeNode, depth int) {
		lines = append(lines, line{op: strings.Repeat("  ", depth) + n.Op, node: n})
		for _, c := range n.Children {
			collect(c, depth+1)
		}
	}
	collect(root, 0)
	width := 0
	for _, l := range lines {
		if len(l.op) > width {
			width = len(l.op)
		}
	}
	for _, l := range lines {
		n := l.node
		fmt.Fprintf(w, "%-*s  est: card=%-8.1f cost=%-10.2f  act: rows=%-6d cost=%-10.2f time=%s",
			width, l.op, n.EstCard, n.EstCost, n.ActRows, n.ActCost,
			time.Duration(n.ActTimeNs).Round(time.Microsecond))
		if n.ActProbes > 0 {
			fmt.Fprintf(w, " probes=%d", n.ActProbes)
			if n.ActBatchRounds > 0 {
				fmt.Fprintf(w, " batch_rounds=%d", n.ActBatchRounds)
			}
		}
		if n.ActBatches > 0 {
			fmt.Fprintf(w, " batches=%d avg_rows=%.0f", n.ActBatches,
				float64(n.ActRows)/float64(n.ActBatches))
		}
		fmt.Fprintln(w)
	}
}

// FormatAnalyzeString renders the tree to a string.
func FormatAnalyzeString(root *AnalyzeNode) string {
	var b strings.Builder
	FormatAnalyze(&b, root)
	return b.String()
}
