package core

import (
	"context"
	"fmt"

	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
)

// inertService is the text service used for pure relational queries: it
// provides the cost constants the optimizer needs and rejects any actual
// text operation, which such queries never issue.
type inertService struct{}

var inertMeter = texservice.NewMeter(texservice.DefaultCosts())

func (inertService) Search(context.Context, textidx.Expr, texservice.Form) (*texservice.Result, error) {
	return nil, fmt.Errorf("core: query has no text source")
}

func (inertService) Retrieve(context.Context, textidx.DocID) (textidx.Document, error) {
	return textidx.Document{}, fmt.Errorf("core: query has no text source")
}

func (inertService) NumDocs() (int, error) { return 0, nil }

func (inertService) MaxTerms() int { return texservice.DefaultMaxTerms }

func (inertService) ShortFields() []string { return nil }

func (inertService) Meter() *texservice.Meter { return inertMeter }

var _ texservice.Service = inertService{}
