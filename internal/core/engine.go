// Package core is the top-level API of the library: a federated query
// engine that loosely integrates relational tables with external Boolean
// text retrieval systems, implementing the paper end to end. Register
// tables and a text source, then run conjunctive queries in the paper's
// SQL syntax; the engine parses, classifies, optimizes over the PrL
// execution space, and executes — choosing among the §3 join methods with
// the §4 cost model and §5 probe-column selection.
//
//	eng := core.NewEngine()
//	eng.RegisterTable(students)
//	eng.RegisterTextSource("mercury", svc)
//	res, err := eng.Query(`select student.name, mercury.docid
//	                       from student, mercury
//	                       where 'belief update' in mercury.title
//	                       and student.name in mercury.author`)
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"textjoin/internal/exec"
	"textjoin/internal/obs"
	"textjoin/internal/optimizer"
	"textjoin/internal/plan"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/stats"
	"textjoin/internal/texservice"
)

// Engine is a federated query engine over registered tables and one or
// more external text sources. It is not safe for concurrent registration;
// once registration is complete, any number of queries may run
// concurrently against it — per-query usage accounting is isolated
// through a context-carried meter (texservice.WithQueryMeter, installed
// automatically by the executor), the statistics estimator serializes its
// sampling internally, and the shared search cache deduplicates
// concurrent identical searches.
type Engine struct {
	catalog   *sqlparse.Catalog
	services  map[string]texservice.Service
	estimator map[string]*stats.Estimator
	opts      Options
}

// Options configures the engine.
type Options struct {
	// Optimizer carries the enumeration options (mode, correlation
	// model, relational tuple cost).
	Optimizer optimizer.Options
	// SampleSize bounds per-predicate sampling (§4.2); default 100.
	SampleSize int
	// Seed makes sampling deterministic; default 1.
	Seed int64
	// SearchCache, when positive, wraps every registered text source in
	// an LRU of that many search results, so repeated instantiations —
	// within one query or across queries — are answered locally (§3.1's
	// caching idea generalized). Sound because indexes are frozen.
	SearchCache int
	// ProbeCache, when positive, additionally wraps every registered text
	// source in a cross-query probe-result cache of that many entries,
	// keyed on normalized expressions so syntactic variants of the same
	// probe (a∧b vs b∧a) hit the same entry. Entries are keyed on the
	// collection version, so live ingest invalidates them on its way through.
	ProbeCache int
	// RowEngine falls back to the row-at-a-time relational operators. The
	// default (false) runs scans, joins and projections as column-oriented
	// batch pipelines (internal/vec); results are identical either way.
	RowEngine bool
}

// DefaultOptions returns the engine defaults (PrL space, fully correlated
// cost model).
func DefaultOptions() Options {
	return Options{Optimizer: optimizer.DefaultOptions(), SampleSize: 100, Seed: 1}
}

// NewEngine creates an empty engine with default options.
func NewEngine() *Engine { return NewEngineWith(DefaultOptions()) }

// NewEngineWith creates an empty engine with the given options.
func NewEngineWith(opts Options) *Engine {
	if opts.SampleSize <= 0 {
		opts.SampleSize = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Engine{
		catalog: &sqlparse.Catalog{
			Tables: map[string]*relation.Table{},
			Text:   map[string]*sqlparse.TextSourceInfo{},
		},
		services:  map[string]texservice.Service{},
		estimator: map[string]*stats.Estimator{},
		opts:      opts,
	}
}

// RegisterTable adds a relational table under its own name.
func (e *Engine) RegisterTable(t *relation.Table) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("core: table must have a name")
	}
	if _, dup := e.catalog.Tables[t.Name]; dup {
		return fmt.Errorf("core: table %q already registered", t.Name)
	}
	if _, dup := e.catalog.Text[t.Name]; dup {
		return fmt.Errorf("core: name %q already used by a text source", t.Name)
	}
	e.catalog.Tables[t.Name] = t
	return nil
}

// RegisterTextSource adds an external text source under the given name.
// Its fields are discovered from the service configuration via the fields
// argument; pass the searchable field names.
func (e *Engine) RegisterTextSource(name string, svc texservice.Service, fields ...string) error {
	if name == "" {
		return fmt.Errorf("core: text source must have a name")
	}
	if len(fields) == 0 {
		return fmt.Errorf("core: text source %q needs at least one field", name)
	}
	if _, dup := e.catalog.Text[name]; dup {
		return fmt.Errorf("core: text source %q already registered", name)
	}
	if _, dup := e.catalog.Tables[name]; dup {
		return fmt.Errorf("core: name %q already used by a table", name)
	}
	sorted := append([]string(nil), fields...)
	sort.Strings(sorted)
	e.catalog.Text[name] = &sqlparse.TextSourceInfo{Name: name, Fields: sorted}
	if e.opts.SearchCache > 0 {
		svc = texservice.NewCached(svc, e.opts.SearchCache)
	}
	if e.opts.ProbeCache > 0 {
		svc = texservice.NewProbeCache(svc, e.opts.ProbeCache)
	}
	e.services[name] = svc
	e.estimator[name] = stats.New(svc,
		stats.WithSampleSize(e.opts.SampleSize), stats.WithSeed(e.opts.Seed))
	return nil
}

// Catalog exposes the engine's catalog (read-only use).
func (e *Engine) Catalog() *sqlparse.Catalog { return e.catalog }

// TextService returns the service registered under the given source name
// as the engine uses it — including the cache decorator when SearchCache
// is enabled — or nil if no such source exists. Serving layers use it to
// read cache statistics and shared meters.
func (e *Engine) TextService(name string) texservice.Service { return e.services[name] }

// Result is the outcome of one query.
type Result struct {
	// Table holds the result rows with qualified column names.
	Table *relation.Table
	// Plan is the executed physical plan.
	Plan plan.Node
	// EstCost is the optimizer's cost estimate (simulated seconds).
	EstCost float64
	// Usage is the text-service consumption of the execution.
	Usage texservice.Usage
	// Probes is the number of probe round trips sent; BatchRounds how
	// many of those were batched (multi-binding) searches.
	Probes      int
	BatchRounds int
	// Batches is the number of column batches the vectorized operators
	// emitted (0 when running on the row engine).
	Batches int
	// OptimizeTime and ExecuteTime are wall-clock durations.
	OptimizeTime, ExecuteTime time.Duration
	// Analyze holds the EXPLAIN ANALYZE tree (per-node estimates next to
	// actuals) when the run's context carried an exec.Analysis; nil
	// otherwise.
	Analyze *exec.AnalyzeNode
}

// Query parses, optimizes and executes a conjunctive query.
func (e *Engine) Query(src string) (*Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query bounded by a context: cancellation or deadline
// expiry aborts the text-service calls the execution issues.
func (e *Engine) QueryContext(ctx context.Context, src string) (*Result, error) {
	pl, err := e.PrepareContext(ctx, src)
	if err != nil {
		return nil, err
	}
	return pl.RunContext(ctx)
}

// Prepared is an optimized query ready to execute (possibly repeatedly).
type Prepared struct {
	engine   *Engine
	analyzed *sqlparse.Analyzed
	plan     plan.Node
	estCost  float64
	optTime  time.Duration
	services map[string]texservice.Service // per text source
}

// Prepare parses, analyzes and optimizes a query without executing it.
func (e *Engine) Prepare(src string) (*Prepared, error) {
	return e.PrepareContext(context.Background(), src)
}

// PrepareContext is Prepare under a context: when the context carries an
// obs recorder, the parse, analyze and optimize phases each get a span,
// with the optimizer's per-candidate costing nested under "optimize".
func (e *Engine) PrepareContext(ctx context.Context, src string) (*Prepared, error) {
	_, psp := obs.StartSpan(ctx, "parse")
	q, err := sqlparse.Parse(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	_, asp := obs.StartSpan(ctx, "analyze")
	a, err := sqlparse.Analyze(q, e.catalog)
	asp.End()
	if err != nil {
		return nil, err
	}
	services := map[string]texservice.Service{}
	estimators := map[string]*stats.Estimator{}
	for _, part := range a.Text {
		services[part.Source] = e.services[part.Source]
		estimators[part.Source] = e.estimator[part.Source]
	}
	start := time.Now()
	octx, osp := obs.StartSpan(ctx, "optimize")
	o, err := optimizer.NewMulti(a, e.catalog, services, estimators, e.opts.Optimizer)
	if err != nil {
		osp.End()
		return nil, err
	}
	res, err := o.OptimizeContext(octx)
	if err != nil {
		osp.End()
		return nil, err
	}
	if osp != nil {
		osp.SetAttr(obs.F64("est_cost", res.EstCost), obs.Str("mode", e.opts.Optimizer.Mode.String()))
		osp.End()
	}
	// Post-optimization rewrites: push residual filters into scans and
	// restrict scans to referenced columns. Engine-agnostic — the row and
	// vectorized paths both honor the pruned plan.
	pruned := plan.Prune(res.Plan, func(name string) (*relation.Schema, bool) {
		t, ok := e.catalog.Tables[name]
		if !ok {
			return nil, false
		}
		return t.Schema.Qualify(t.Name), true
	})
	return &Prepared{
		engine:   e,
		analyzed: a,
		plan:     pruned,
		estCost:  res.EstCost,
		optTime:  time.Since(start),
		services: services,
	}, nil
}

// Plan returns the optimized physical plan.
func (p *Prepared) Plan() plan.Node { return p.plan }

// Explain renders the plan.
func (p *Prepared) Explain() string { return plan.String(p.plan) }

// EstCost returns the optimizer's estimate.
func (p *Prepared) EstCost() float64 { return p.estCost }

// Analyzed exposes the classified query.
func (p *Prepared) Analyzed() *sqlparse.Analyzed { return p.analyzed }

// Run executes the prepared plan.
func (p *Prepared) Run() (*Result, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the prepared plan under a context; cancellation or
// deadline expiry aborts the run's text-service calls. When a text source
// supports snapshot pinning (a live-ingest backend), the run is pinned to
// the collection state at this moment: every search and retrieve the plan
// issues sees one consistent version of the index even while concurrent
// ingest advances it.
func (p *Prepared) RunContext(ctx context.Context) (*Result, error) {
	for _, svc := range p.services {
		ctx = texservice.PinSnapshot(ctx, svc)
	}
	ex := &exec.Executor{Cat: p.engine.catalog, Svc: inertService{}, Services: p.services,
		Vectorized: !p.engine.opts.RowEngine}
	ectx, esp := obs.StartSpan(ctx, "execute")
	start := time.Now()
	table, st, err := ex.Run(ectx, p.plan)
	if esp != nil {
		esp.SetAttr(obs.F64("text_cost", st.Usage.Cost), obs.Int("probes", st.Probes))
		esp.End()
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		Table:        table,
		Plan:         p.plan,
		EstCost:      p.estCost,
		Usage:        st.Usage,
		Probes:       st.Probes,
		BatchRounds:  st.BatchRounds,
		Batches:      st.Batches,
		OptimizeTime: p.optTime,
		ExecuteTime:  time.Since(start),
	}
	if an := exec.AnalysisFrom(ctx); an != nil {
		res.Analyze = an.Tree(p.plan)
	}
	return res, nil
}
