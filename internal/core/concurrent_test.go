package core

import (
	"sync"
	"testing"

	"textjoin/internal/join"
	"textjoin/internal/texservice"
	"textjoin/internal/workload"
)

func workloadDemo(t *testing.T) *workload.Demo {
	t.Helper()
	return workload.NewDemo(600, 6)
}

func demoService(demo *workload.Demo) (*texservice.Local, error) {
	return texservice.NewLocal(demo.Corpus.Index,
		texservice.WithShortFields("title", "author", "year"))
}

// TestConcurrentQueries: once registration is done, many goroutines can
// Prepare and Run queries against the same engine concurrently (the
// shared meter is thread-safe; the frozen index is read-only).
func TestConcurrentQueries(t *testing.T) {
	eng, demo, svc := demoEngine(t)
	queries := []string{
		`select student.name, mercury.docid from student, mercury
		 where student.year > 2 and student.name in mercury.author`,
		`select docid from project, mercury
		 where project.pname in mercury.title and project.member in mercury.author`,
		`select student.name from student, faculty
		 where student.advisor = faculty.fname`,
	}
	// Reference results, computed serially.
	refs := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}
	_ = demo
	_ = svc

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				qi := (seed + i) % len(queries)
				res, err := eng.Query(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if !join.SameRows(res.Table, refs[qi].Table) {
					t.Errorf("concurrent run of query %d differs", qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEngineSearchCache: with the LRU enabled, re-running a query charges
// (almost) nothing; results are unchanged.
func TestEngineSearchCache(t *testing.T) {
	demo := workloadDemo(t)
	opts := DefaultOptions()
	opts.SearchCache = 1024
	eng := NewEngineWith(opts)
	for _, tbl := range demo.Catalog.Tables {
		if err := eng.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := demoService(demo)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("mercury", svc, demo.Corpus.Fields()...); err != nil {
		t.Fatal(err)
	}
	src := `select student.name, mercury.docid from student, mercury
		where student.year > 2 and student.name in mercury.author`
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.Usage.Searches == 0 {
		t.Fatal("first run sent no searches")
	}
	second, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(first.Table, second.Table) {
		t.Fatal("cached run differs")
	}
	if second.Usage.Searches != 0 {
		t.Fatalf("cached run still sent %d searches", second.Usage.Searches)
	}
}
