package core

import (
	"strings"
	"testing"

	"textjoin/internal/exec"
	"textjoin/internal/join"
	"textjoin/internal/optimizer"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/value"
	"textjoin/internal/workload"
)

func demoEngine(t *testing.T) (*Engine, *workload.Demo, *texservice.Local) {
	t.Helper()
	demo := workload.NewDemo(800, 3)
	svc, err := texservice.NewLocal(demo.Corpus.Index,
		texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	for _, tbl := range demo.Catalog.Tables {
		if err := eng.RegisterTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RegisterTextSource("mercury", svc, demo.Corpus.Fields()...); err != nil {
		t.Fatal(err)
	}
	return eng, demo, svc
}

func TestEngineEndToEnd(t *testing.T) {
	eng, demo, svc := demoEngine(t)
	src := `select student.name, mercury.docid from student, mercury
		where student.year > 1 and student.name in mercury.author`
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Schema.ColumnIndex("mercury.docid") < 0 {
		t.Fatalf("result schema: %v", res.Table.Schema)
	}
	if res.Usage.Searches == 0 {
		t.Fatal("no text searches recorded")
	}
	// Verify against the naive oracle.
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.NaiveQuery(p.Analyzed(), demo.Catalog, svc.Index())
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, want) {
		t.Fatalf("engine result (%d rows) differs from naive (%d rows)",
			res.Table.Cardinality(), want.Cardinality())
	}
}

func TestEnginePrepareReuse(t *testing.T) {
	eng, _, _ := demoEngine(t)
	p, err := eng.Prepare(`select docid from student, mercury
		where 'belief update' in mercury.title and student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost() <= 0 {
		t.Fatalf("estimate = %v", p.EstCost())
	}
	if !strings.Contains(p.Explain(), "TextJoin") {
		t.Fatalf("explain: %s", p.Explain())
	}
	r1, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(r1.Table, r2.Table) {
		t.Fatal("repeated runs differ")
	}
	if r1.OptimizeTime <= 0 || r1.ExecuteTime <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestEnginePureRelational(t *testing.T) {
	eng, _, _ := demoEngine(t)
	res, err := eng.Query(`select student.name, faculty.fname from student, faculty
		where student.advisor = faculty.fname and student.year > 4`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Searches != 0 {
		t.Fatal("pure relational query touched the text service")
	}
	if res.Probes != 0 {
		t.Fatal("pure relational query probed")
	}
}

func TestEngineMultiJoin(t *testing.T) {
	eng, demo, svc := demoEngine(t)
	src := `select student.name, mercury.docid from student, faculty, mercury
		where student.advisor = faculty.fname
		and student.name in mercury.author
		and faculty.fname in mercury.author`
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.NaiveQuery(p.Analyzed(), demo.Catalog, svc.Index())
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, want) {
		t.Fatal("multi-join result differs from naive")
	}
}

func TestEngineRegistrationErrors(t *testing.T) {
	eng := NewEngine()
	tbl := relation.NewTable("t", relation.MustSchema(
		relation.Column{Name: "a", Kind: value.KindString}))
	if err := eng.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTable(tbl); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if err := eng.RegisterTable(nil); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := eng.RegisterTable(relation.NewTable("", tbl.Schema)); err == nil {
		t.Fatal("unnamed table accepted")
	}

	demo := workload.NewDemo(50, 1)
	svc, err := texservice.NewLocal(demo.Corpus.Index)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("", svc, "title"); err == nil {
		t.Fatal("unnamed source accepted")
	}
	if err := eng.RegisterTextSource("m", svc); err == nil {
		t.Fatal("fieldless source accepted")
	}
	if err := eng.RegisterTextSource("t", svc, "title"); err == nil {
		t.Fatal("source name colliding with table accepted")
	}
	if err := eng.RegisterTextSource("m", svc, "title"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("m", svc, "title"); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if err := eng.RegisterTable(relation.NewTable("m", tbl.Schema)); err == nil {
		t.Fatal("table name colliding with source accepted")
	}
	if eng.Catalog() == nil {
		t.Fatal("catalog accessor nil")
	}
}

func TestEngineQueryErrors(t *testing.T) {
	eng, _, _ := demoEngine(t)
	bad := []string{
		"not sql",
		"select * from nosuch",
		"select nosuch from student",
	}
	for _, src := range bad {
		if _, err := eng.Query(src); err == nil {
			t.Errorf("Query(%q) succeeded", src)
		}
	}
}

func TestEngineModes(t *testing.T) {
	for _, mode := range []optimizer.Mode{
		optimizer.ModeTraditional, optimizer.ModePrL, optimizer.ModePrLGreedy,
	} {
		opts := DefaultOptions()
		opts.Optimizer.Mode = mode
		demo := workload.NewDemo(400, 5)
		svc, err := texservice.NewLocal(demo.Corpus.Index,
			texservice.WithShortFields("title", "author", "year"))
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngineWith(opts)
		for _, tbl := range demo.Catalog.Tables {
			if err := eng.RegisterTable(tbl); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.RegisterTextSource("mercury", svc, demo.Corpus.Fields()...); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(`select docid from project, mercury
			where project.pname in mercury.title and project.member in mercury.author`)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want, err := join.NaiveJoin(&join.Spec{
			Relation: demo.Catalog.Tables["project"].Qualified(),
			Preds: []join.Pred{
				{Column: "project.pname", Field: "title"},
				{Column: "project.member", Field: "author"},
			},
		}, demo.Corpus.Index)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.Cardinality() != want.Cardinality() {
			t.Fatalf("%v: %d rows, naive %d", mode, res.Table.Cardinality(), want.Cardinality())
		}
	}
}

func TestInertService(t *testing.T) {
	var s inertService
	if _, err := s.Search(bg, nil, texservice.FormShort); err == nil {
		t.Fatal("inert search succeeded")
	}
	if _, err := s.Retrieve(bg, 0); err == nil {
		t.Fatal("inert retrieve succeeded")
	}
	if n, err := s.NumDocs(); err != nil || n != 0 {
		t.Fatal("inert NumDocs wrong")
	}
	if s.MaxTerms() != texservice.DefaultMaxTerms || s.ShortFields() != nil || s.Meter() == nil {
		t.Fatal("inert accessors wrong")
	}
}

func TestPreparedPlanAccessor(t *testing.T) {
	eng, _, _ := demoEngine(t)
	p, err := eng.Prepare(`select student.name from student, faculty
		where student.advisor = faculty.fname`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Plan() == nil {
		t.Fatal("Plan accessor nil")
	}
}
