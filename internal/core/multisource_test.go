package core

import (
	"strings"
	"testing"

	"textjoin/internal/exec"
	"textjoin/internal/join"
	"textjoin/internal/optimizer"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// multiSourceFixture builds an engine with two distinct external text
// sources (a report archive and a patent database) and one relation whose
// columns join with both.
func multiSourceFixture(t *testing.T) (*Engine, map[string]*textidx.Index) {
	t.Helper()
	reports := textidx.NewIndex()
	for _, d := range []textidx.Document{
		{ExtID: "R1", Fields: map[string]string{"title": "adaptive filtering", "author": "garcia"}},
		{ExtID: "R2", Fields: map[string]string{"title": "query rewriting", "author": "widom"}},
		{ExtID: "R3", Fields: map[string]string{"title": "adaptive systems", "author": "ullman garcia"}},
	} {
		reports.MustAdd(d)
	}
	reports.Freeze()

	patents := textidx.NewIndex()
	for _, d := range []textidx.Document{
		{ExtID: "P1", Fields: map[string]string{"abstract": "a filtering apparatus", "inventor": "garcia"}},
		{ExtID: "P2", Fields: map[string]string{"abstract": "database engine", "inventor": "stonebraker"}},
		{ExtID: "P3", Fields: map[string]string{"abstract": "adaptive filtering method", "inventor": "widom"}},
	} {
		patents.MustAdd(d)
	}
	patents.Freeze()

	svcReports, err := texservice.NewLocal(reports, texservice.WithShortFields("title", "author"))
	if err != nil {
		t.Fatal(err)
	}
	svcPatents, err := texservice.NewLocal(patents, texservice.WithShortFields("abstract", "inventor"))
	if err != nil {
		t.Fatal(err)
	}

	researcher := relation.NewTable("researcher", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "topic", Kind: value.KindString},
	))
	for _, r := range [][2]string{
		{"garcia", "filtering"},
		{"widom", "adaptive"},
		{"ullman", "database"},
		{"nobody", "nothing"},
	} {
		researcher.MustInsert(relation.Tuple{value.String(r[0]), value.String(r[1])})
	}

	eng := NewEngine()
	if err := eng.RegisterTable(researcher); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("reports", svcReports, "title", "author"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("patents", svcPatents, "abstract", "inventor"); err != nil {
		t.Fatal(err)
	}
	return eng, map[string]*textidx.Index{"reports": reports, "patents": patents}
}

// TestTwoTextSources runs a query joining one relation with two distinct
// external sources — researchers whose name authors a report AND invents
// a patent — and checks it against the naive oracle.
func TestTwoTextSources(t *testing.T) {
	eng, indexes := multiSourceFixture(t)
	src := `select researcher.name, reports.docid, patents.docid
		from researcher, reports, patents
		where researcher.name in reports.author
		and researcher.name in patents.inventor`
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Analyzed().Text) != 2 {
		t.Fatalf("sources = %d", len(p.Analyzed().Text))
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.NaiveQueryMulti(p.Analyzed(), eng.Catalog(), indexes)
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, want) {
		t.Fatalf("two-source result (%d rows) differs from naive (%d)\nplan:\n%s",
			res.Table.Cardinality(), want.Cardinality(), p.Explain())
	}
	// garcia authors R1/R3 and invents P1; widom authors R2 and invents P3.
	if res.Table.Cardinality() != 3 {
		t.Fatalf("rows = %d, want 3", res.Table.Cardinality())
	}
	// The plan contains one text join per source.
	if !strings.Contains(p.Explain(), "reports") || !strings.Contains(p.Explain(), "patents") {
		t.Fatalf("plan missing a source:\n%s", p.Explain())
	}
}

// TestTwoTextSourcesWithSelections adds per-source text selections and
// different output forms.
func TestTwoTextSourcesWithSelections(t *testing.T) {
	eng, indexes := multiSourceFixture(t)
	src := `select researcher.name, reports.title, patents.docid
		from researcher, reports, patents
		where 'adaptive' in reports.title
		and 'filtering' in patents.abstract
		and researcher.name in reports.author
		and researcher.name in patents.inventor`
	p, err := eng.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	// reports needs long form (title selected); patents does not.
	if part := p.Analyzed().Part("reports"); !part.LongForm {
		t.Fatal("reports should be long form")
	}
	if part := p.Analyzed().Part("patents"); part.LongForm {
		t.Fatal("patents should not be long form")
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.NaiveQueryMulti(p.Analyzed(), eng.Catalog(), indexes)
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, want) {
		t.Fatal("selective two-source result differs from naive")
	}
}

// TestTwoTextSourcesAllModes checks every optimizer mode agrees.
func TestTwoTextSourcesAllModes(t *testing.T) {
	src := `select researcher.name, reports.docid, patents.docid
		from researcher, reports, patents
		where researcher.topic in reports.title
		and researcher.topic in patents.abstract
		and researcher.name in reports.author`
	var reference *relation.Table
	for _, mode := range []optimizer.Mode{
		optimizer.ModeTraditional, optimizer.ModePrL, optimizer.ModePrLGreedy,
	} {
		eng, indexes := multiSourceFixture(t)
		opts := DefaultOptions()
		opts.Optimizer.Mode = mode
		eng.opts = opts
		p, err := eng.Prepare(src)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := p.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want, err := exec.NaiveQueryMulti(p.Analyzed(), eng.Catalog(), indexes)
		if err != nil {
			t.Fatal(err)
		}
		if !join.SameRows(res.Table, want) {
			t.Fatalf("%v: result differs from naive\nplan:\n%s", mode, p.Explain())
		}
		if reference == nil {
			reference = res.Table
		} else if !join.SameRows(res.Table, reference) {
			t.Fatalf("%v: result differs across modes", mode)
		}
	}
}

// TestMixedLocalRemoteSources: one source in-process, the other behind a
// real TCP server — the fully heterogeneous federation. Results must
// match the all-local run.
func TestMixedLocalRemoteSources(t *testing.T) {
	// All-local reference.
	engLocal, indexes := multiSourceFixture(t)
	src := `select researcher.name, reports.docid, patents.docid
		from researcher, reports, patents
		where researcher.name in reports.author
		and researcher.name in patents.inventor`
	ref, err := engLocal.Query(src)
	if err != nil {
		t.Fatal(err)
	}

	// Mixed: patents served over TCP.
	patentsLocal, err := texservice.NewLocal(indexes["patents"],
		texservice.WithShortFields("abstract", "inventor"))
	if err != nil {
		t.Fatal(err)
	}
	srv := texservice.NewServer(patentsLocal)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remotePatents, err := texservice.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer remotePatents.Close()

	reportsLocal, err := texservice.NewLocal(indexes["reports"],
		texservice.WithShortFields("title", "author"))
	if err != nil {
		t.Fatal(err)
	}
	researcher := engLocal.Catalog().Tables["researcher"]
	eng := NewEngine()
	if err := eng.RegisterTable(researcher); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("reports", reportsLocal, "title", "author"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterTextSource("patents", remotePatents, "abstract", "inventor"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, ref.Table) {
		t.Fatalf("mixed local/remote result (%d rows) differs from all-local (%d)",
			res.Table.Cardinality(), ref.Table.Cardinality())
	}
}

// TestUsageAggregatesAcrossServices: the run's usage sums both services'
// meters.
func TestUsageAggregatesAcrossServices(t *testing.T) {
	eng, _ := multiSourceFixture(t)
	res, err := eng.Query(`select researcher.name, reports.docid, patents.docid
		from researcher, reports, patents
		where researcher.name in reports.author
		and researcher.name in patents.inventor`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Searches < 2 {
		t.Fatalf("usage across two sources: %+v", res.Usage)
	}
}
