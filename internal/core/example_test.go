package core_test

import (
	"fmt"
	"log"

	"textjoin/internal/core"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// Example shows the complete integration: index documents, register a
// relation and the text source, and run a conjunctive query mixing
// relational selections, a text selection, and a foreign join.
func Example() {
	// The external text system.
	ix := textidx.NewIndex()
	ix.MustAdd(textidx.Document{ExtID: "CSTR-1", Fields: map[string]string{
		"title": "Belief Update in Knowledge Bases", "author": "radhika"}})
	ix.MustAdd(textidx.Document{ExtID: "CSTR-2", Fields: map[string]string{
		"title": "Text Retrieval", "author": "gravano"}})
	ix.MustAdd(textidx.Document{ExtID: "CSTR-3", Fields: map[string]string{
		"title": "Belief Revision and Update", "author": "gravano"}})
	ix.Freeze()
	svc, err := texservice.NewLocal(ix, texservice.WithShortFields("title", "author"))
	if err != nil {
		log.Fatal(err)
	}

	// The relational side.
	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "year", Kind: value.KindInt},
	))
	student.MustInsert(relation.Tuple{value.String("radhika"), value.Int(5)})
	student.MustInsert(relation.Tuple{value.String("gravano"), value.Int(4)})
	student.MustInsert(relation.Tuple{value.String("kao"), value.Int(2)})

	// The engine.
	eng := core.NewEngine()
	if err := eng.RegisterTable(student); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterTextSource("mercury", svc, "title", "author"); err != nil {
		log.Fatal(err)
	}

	res, err := eng.Query(`select student.name, mercury.docid
		from student, mercury
		where student.year > 3
		and 'belief update' in mercury.title
		and student.name in mercury.author`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Table.Rows {
		fmt.Printf("%s wrote %s\n", row[0].Text(), row[1].Text())
	}
	// Output:
	// radhika wrote CSTR-1
}
