package cost

import (
	"math"
	"math/rand"
	"testing"

	"textjoin/internal/texservice"
)

// randomParams draws a random but valid parameter set.
func randomParams(rng *rand.Rand, k, g int) *Params {
	p := &Params{
		Costs: texservice.Costs{
			CI: rng.Float64() * 5,
			CP: rng.Float64() * 0.001,
			CS: rng.Float64() * 0.1,
			CL: rng.Float64() * 5,
			CA: rng.Float64() * 0.01,
		},
		D: 1000 + rng.Intn(100000),
		M: 70,
		G: g,
		N: 1 + rng.Intn(100000),
	}
	for i := 0; i < k; i++ {
		p.Preds = append(p.Preds, Pred{
			Sel:      rng.Float64(),
			Fanout:   rng.Float64() * 50,
			Distinct: 1 + rng.Intn(p.N),
			Terms:    1 + rng.Intn(3),
		})
	}
	if rng.Intn(2) == 0 {
		p.HasSel = true
		p.SelFanout = rng.Float64() * 100
		p.SelPostings = p.SelFanout * (1 + rng.Float64())
		p.SelTerms = 1 + rng.Intn(3)
	}
	p.LongForm = rng.Intn(2) == 0
	return p
}

// TestTheorem53 verifies Theorem 5.3: for 1-correlated cost models the
// bounded search over probe sets of at most 2 columns finds a probe set as
// good as the exhaustive search over all 2^k−1 subsets, for both P+TS and
// P+RTP cost functions.
func TestTheorem53(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(5) // up to 6 predicates
		p := randomParams(rng, k, 1)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid params: %v", trial, err)
		}
		for _, fn := range []func([]int) float64{p.CostPTS, p.CostPRTP} {
			jb, cb := p.OptimalProbe(fn)
			je, ce := p.ExhaustiveOptimalProbe(fn)
			if len(jb) > 2 {
				t.Fatalf("trial %d: bounded search returned %d columns", trial, len(jb))
			}
			if cb > ce*(1+1e-12)+1e-12 {
				t.Fatalf("trial %d: bounded %v (cost %v) worse than exhaustive %v (cost %v)",
					trial, jb, cb, je, ce)
			}
		}
	}
}

// TestProbeBoundGeneralizes verifies the min(k, 2g) generalization for
// g-correlated models.
func TestProbeBoundGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 200; trial++ {
		g := 1 + rng.Intn(3)
		k := 2 + rng.Intn(5)
		p := randomParams(rng, k, g)
		wantBound := 2 * g
		if k < wantBound {
			wantBound = k
		}
		if p.ProbeBound() != wantBound {
			t.Fatalf("ProbeBound = %d, want %d", p.ProbeBound(), wantBound)
		}
		for _, fn := range []func([]int) float64{p.CostPTS, p.CostPRTP} {
			_, cb := p.OptimalProbe(fn)
			_, ce := p.ExhaustiveOptimalProbe(fn)
			if cb > ce*(1+1e-12)+1e-12 {
				t.Fatalf("trial %d (g=%d,k=%d): bounded %v worse than exhaustive %v",
					trial, g, k, cb, ce)
			}
		}
	}
}

// TestOptimalProbeDeterministicTies prefers smaller sets at equal cost.
func TestOptimalProbeDeterministicTies(t *testing.T) {
	p := &Params{
		Costs: texservice.Costs{}, // all-zero costs: every probe set ties at 0
		D:     100, M: 70, G: 1, N: 10,
		Preds: []Pred{
			{Sel: 0.5, Fanout: 1, Distinct: 2, Terms: 1},
			{Sel: 0.5, Fanout: 1, Distinct: 2, Terms: 1},
		},
	}
	J, c := p.OptimalProbe(p.CostPTS)
	if c != 0 {
		t.Fatalf("cost = %v", c)
	}
	if len(J) != 1 {
		t.Fatalf("tie not broken toward the smaller set: %v", J)
	}
}

// TestOptimalProbeComplexity sanity-checks that the bounded search visits
// O(k^2) subsets for g=1 by timing-free means: it must succeed quickly even
// for k where 2^k would be infeasible.
func TestOptimalProbeComplexityLargeK(t *testing.T) {
	p := &Params{
		Costs: texservice.DefaultCosts(),
		D:     100000, M: 700, G: 1, N: 100000,
	}
	for i := 0; i < 24; i++ {
		p.Preds = append(p.Preds, Pred{
			Sel:      float64(i+1) / 25,
			Fanout:   float64(i + 1),
			Distinct: 10 * (i + 1),
			Terms:    1,
		})
	}
	J, c := p.OptimalProbe(p.CostPTS)
	if len(J) == 0 || len(J) > 2 || math.IsInf(c, 1) {
		t.Fatalf("bounded search failed: %v, %v", J, c)
	}
}

// TestProbeNeverBeatsFreeLunch: a probe set's P+TS cost is at least the
// pure substitution cost of the surviving fraction — i.e. probing can
// reduce but never below the work it saves plus its own cost; as a
// consequence, when every selectivity is 1 probing is never strictly
// better than TS.
func TestProbeUselessWhenSelectivityOne(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(3)
		p := randomParams(rng, k, 1)
		for i := range p.Preds {
			p.Preds[i].Sel = 1
		}
		_, c := p.OptimalProbe(p.CostPTS)
		if c < p.CostTS()-1e-9 {
			t.Fatalf("trial %d: probing (%v) beats TS (%v) with s=1 everywhere",
				trial, c, p.CostTS())
		}
	}
}
