package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"textjoin/internal/texservice"
)

// paramsFromFuzz builds valid parameters from fuzz inputs.
func paramsFromFuzz(seed int64, k, g int) *Params {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	if k > 6 {
		k = 6
	}
	if g < 1 {
		g = 1
	}
	if g > k {
		g = k
	}
	p := &Params{
		Costs: texservice.Costs{
			CI: rng.Float64()*5 + 0.01,
			CP: rng.Float64() * 0.001,
			CS: rng.Float64() * 0.1,
			CL: rng.Float64() * 5,
			CA: rng.Float64() * 0.01,
		},
		D: 100 + rng.Intn(100000),
		M: 70,
		G: g,
		N: 1 + rng.Intn(10000),
	}
	for i := 0; i < k; i++ {
		p.Preds = append(p.Preds, Pred{
			Sel:      rng.Float64(),
			Fanout:   rng.Float64() * 40,
			Distinct: 1 + rng.Intn(p.N),
			Terms:    1 + rng.Intn(3),
		})
	}
	p.LongForm = rng.Intn(2) == 0
	return p
}

// TestJointSelShrinksWithColumns: adding a column never increases the
// g-correlated joint selectivity (quick).
func TestJointSelShrinksWithColumns(t *testing.T) {
	prop := func(seed int64, kRaw, gRaw uint8) bool {
		k := 2 + int(kRaw)%4
		g := 1 + int(gRaw)%k
		p := paramsFromFuzz(seed, k, g)
		sub := p.AllColumns()[:k-1]
		full := p.AllColumns()
		return p.JointSel(full) <= p.JointSel(sub)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestJointFanoutShrinksWithColumns: adding a column never increases the
// joint fanout (fanouts beyond the g smallest are either ignored or,
// divided by D, shrink the product further) — provided fanouts ≤ D, which
// the generator guarantees (quick).
func TestJointFanoutShrinksWithColumns(t *testing.T) {
	prop := func(seed int64, kRaw, gRaw uint8) bool {
		k := 2 + int(kRaw)%4
		g := 1 + int(gRaw)%k
		p := paramsFromFuzz(seed, k, g)
		sub := p.AllColumns()[:k-1]
		full := p.AllColumns()
		return p.JointFanout(full, false) <= p.JointFanout(sub, false)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestUBoundedByVAndD: U_{n,J} ≤ min(V_{n,J}, D), and both grow with n
// (quick).
func TestUBoundedByVAndD(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		p := paramsFromFuzz(seed, 3, 1)
		n := float64(1 + nRaw%5000)
		J := p.AllColumns()
		u, v := p.U(n, J), p.V(n, J)
		if u > v+1e-6 || u > float64(p.D)+1e-6 {
			return false
		}
		u2 := p.U(n+100, J)
		v2 := p.V(n+100, J)
		return u2 >= u-1e-9 && v2 >= v-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestCostsNonNegativeAndFinite: every cost formula yields a nonnegative
// value, finite for applicable methods (quick).
func TestCostsNonNegativeAndFinite(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%5
		p := paramsFromFuzz(seed, k, 1)
		vals := []float64{p.CostTS(), p.CostTSBatched(), p.CostSJRTP()}
		if k >= 2 {
			vals = append(vals, p.CostPTS([]int{0}), p.CostPTSLazy([]int{0}),
				p.CostPRTP([]int{0}), p.CostProbe([]int{0}))
		}
		for _, v := range vals {
			if math.IsNaN(v) || v < 0 {
				return false
			}
		}
		// TS is always finite and applicable.
		return !math.IsInf(p.CostTS(), 1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestProbeMonotoneInN: the probe-phase cost never decreases as the
// relation grows (N_J is capped by N) (quick).
func TestProbeMonotoneInN(t *testing.T) {
	prop := func(seed int64) bool {
		p := paramsFromFuzz(seed, 3, 1)
		small := *p
		small.N = p.N / 2
		if small.N < 1 {
			small.N = 1
		}
		return small.CostProbe([]int{0}) <= p.CostProbe([]int{0})+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestBestNeverWorseThanTS: the cost-based Best choice is never more
// expensive than plain TS, the universally applicable default (quick).
func TestBestNeverWorseThanTS(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		k := 1 + int(kRaw)%5
		p := paramsFromFuzz(seed, k, 1)
		_, best := p.Best()
		return best <= p.CostTS()+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
