package cost

import (
	"math"
	"testing"

	"textjoin/internal/texservice"
)

// Golden tests for the batched-probe closed forms (batch.go): capacities
// and round-trip counts pinned to hand-computed values on the Table-1
// fixture, component deltas against the per-tuple probing cost, the
// composition identities of the full methods, the BatchProbe gate, and
// the per-tuple→batched crossover cardinality.

func TestProbeBatchCapacityAndRounds(t *testing.T) {
	// Fixture: M=70, N=100, N₀=25, N₁=80, one term per predicate.
	cases := []struct {
		name     string
		mutate   func(*Params)
		J        []int
		capacity int
		rounds   float64
	}{
		{"single pred fills the limit", nil, []int{0}, 70, 1},
		{"81 bindings need two batches", nil, []int{1}, 70, 2},
		{"two-pred bindings halve capacity", nil, []int{0, 1}, 35, 3}, // ⌈100/35⌉
		{"TermsMax governs packing", func(p *Params) { p.Preds[0].TermsMax = 3 },
			[]int{0}, 23, 2}, // ⌊70/3⌋ = 23, ⌈25/23⌉ = 2
		{"selection terms occupy every batch", func(p *Params) {
			p.HasSel, p.SelFanout, p.SelPostings, p.SelTerms = true, 30, 120, 2
		}, []int{0, 1}, 34, 3}, // ⌊(70−2)/2⌋ = 34, ⌈100/34⌉ = 3
		{"binding wider than the limit", func(p *Params) { p.M = 1 },
			[]int{0, 1}, 0, math.Inf(1)},
	}
	for _, tc := range cases {
		p := twoPredParams()
		if tc.mutate != nil {
			tc.mutate(p)
		}
		if got := p.ProbeBatchCapacity(tc.J); got != tc.capacity {
			t.Errorf("%s: capacity %d, want %d", tc.name, got, tc.capacity)
		}
		if got := p.ProbeBatchRounds(tc.J); got != tc.rounds && !(math.IsInf(got, 1) && math.IsInf(tc.rounds, 1)) {
			t.Errorf("%s: rounds %v, want %v", tc.name, got, tc.rounds)
		}
	}
	// An unbatchable probe set poisons every dependent estimate.
	p := twoPredParams()
	p.M = 1
	for _, c := range []float64{p.CostProbeBatched([]int{0, 1}), p.CostPTSBatch([]int{0, 1}), p.CostPRTPBatch([]int{0, 1})} {
		if !math.IsInf(c, 1) {
			t.Errorf("oversize binding costed %v, want +Inf", c)
		}
	}
}

// TestCostProbeBatchedDelta pins batching's saving against per-tuple
// probing: with J={1} (80 one-term bindings, 2 batches) the invocation
// term collapses from 80·c_i to 2·c_i while attribution adds c_a per
// shipped document — list work and short-form shipping are unchanged
// without a selection.
func TestCostProbeBatchedDelta(t *testing.T) {
	p := twoPredParams()
	J := []int{1}
	full := p.CostProbe(J)
	batched := p.CostProbeBatched(J)
	if batched >= full {
		t.Fatalf("batched probing (%v) not cheaper than per-tuple (%v)", batched, full)
	}
	// V_{80,{1}} = 80·5 = 400 shipped documents.
	wantDelta := p.Costs.CI*(80-2) - p.Costs.CA*400
	if math.Abs((full-batched)-wantDelta) > 1e-9 {
		t.Fatalf("delta = %v, want %v", full-batched, wantDelta)
	}
}

// TestCostProbeBatchedWithSelection pins the full closed form when a text
// selection rides in every batch: its inverted lists are re-processed per
// batch and its result caps what each batch can ship.
func TestCostProbeBatchedWithSelection(t *testing.T) {
	p := twoPredParams()
	p.HasSel, p.SelFanout, p.SelPostings, p.SelTerms = true, 30, 120, 2
	J := []int{1}
	// capacity ⌊(70−2)/1⌋ = 68 → B = ⌈80/68⌉ = 2 batches.
	// List work: 2·120 selection postings + 80·5 join-term postings = 640.
	// Shipped: min(V_{80,{1}} = 80·min(5,30) = 400, B·SelFanout = 60) = 60.
	want := p.Costs.CI*2 + p.Costs.CP*640 + (p.Costs.CS+p.Costs.CA)*60
	if got := p.CostProbeBatched(J); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CostProbeBatched = %v, want %v", got, want)
	}
}

// TestBatchMethodCompositions: the full batched methods change only the
// probing phase — P+TS keeps its substitution phase and P+RTP its result
// transmission bit for bit.
func TestBatchMethodCompositions(t *testing.T) {
	for _, withSel := range []bool{false, true} {
		p := twoPredParams()
		if withSel {
			p.HasSel, p.SelFanout, p.SelPostings, p.SelTerms = true, 30, 120, 2
		}
		for _, J := range [][]int{{0}, {1}, {0, 1}} {
			substitution := p.CostPTS(J) - p.CostProbe(J)
			if got := p.CostPTSBatch(J) - p.CostProbeBatched(J); math.Abs(got-substitution) > 1e-9 {
				t.Errorf("withSel=%v J=%v: P+TS substitution phase %v, per-tuple %v",
					withSel, J, got, substitution)
			}
			want := p.CostProbeBatched(J) + p.resultTransmission()
			if got := p.CostPRTPBatch(J); math.Abs(got-want) > 1e-9 {
				t.Errorf("withSel=%v J=%v: CostPRTPBatch = %v, want %v", withSel, J, got, want)
			}
		}
	}
}

// TestBatchProbeGate: with BatchProbe off (the default) the batched
// methods are inapplicable and invisible — rankings and best choices are
// exactly the seed model's. Switching the gate on can only improve the
// best cost.
func TestBatchProbeGate(t *testing.T) {
	off := twoPredParams()
	if off.Applicable(MethodPTSBatch) || off.Applicable(MethodPRTPBatch) {
		t.Fatal("batched methods applicable without the BatchProbe gate")
	}
	if c := off.Cost(MethodPTSBatch); !math.IsInf(c, 1) {
		t.Fatalf("gated MethodPTSBatch cost = %v, want +Inf", c)
	}
	for _, m := range off.Ranking() {
		if m == MethodPTSBatch || m == MethodPRTPBatch {
			t.Fatalf("gated ranking contains %v", m)
		}
	}

	on := twoPredParams()
	on.BatchProbe = true
	if !on.Applicable(MethodPTSBatch) || !on.Applicable(MethodPRTPBatch) {
		t.Fatal("batched methods inapplicable despite BatchProbe")
	}
	if c := on.Cost(MethodPTSBatch); math.IsInf(c, 1) {
		t.Fatal("MethodPTSBatch cost infinite with BatchProbe on")
	}
	// Per-method costs agree wherever both models price the method.
	for _, m := range off.Ranking() {
		if offC, onC := off.Cost(m), on.Cost(m); offC != onC {
			t.Errorf("%v: cost changed %v → %v when enabling BatchProbe", m, offC, onC)
		}
	}
	_, offBest := off.Best()
	_, onBest := on.Best()
	if onBest > offBest {
		t.Errorf("best cost rose from %v to %v when enabling BatchProbe", offBest, onBest)
	}
}

// crossoverParams is a regime where batching has a genuine break-even
// point: attribution is expensive relative to invocation (c_a·f close to
// c_i), so few-binding probes are cheaper per tuple and many-binding
// probes are cheaper batched. Predicate 1 is useless to probe on
// (selectivity 1), pinning the optimal probe set to {0}.
func crossoverParams(n int) *Params {
	return &Params{
		Costs: texservice.Costs{CI: 1, CA: 0.09},
		D:     100000,
		M:     70,
		G:     1,
		N:     n,
		Preds: []Pred{
			{Sel: 0.5, Fanout: 10, Distinct: 100000, Terms: 1},
			{Sel: 1, Fanout: 50, Distinct: 100000, Terms: 1},
		},
	}
}

// TestBatchCrossoverCardinality: the model flips from per-tuple to
// batched probing exactly at the closed forms' predicted break-even. With
// J={0}, one batch up to N=70 and only c_i/c_a charged, the delta is
//
//	C_P − C_PB = c_i·(N−1) − c_a·f·N
//
// which turns positive first at N = 11 (c_i = 1, c_a·f = 0.9).
func TestBatchCrossoverCardinality(t *testing.T) {
	// Predicted crossover from the closed forms.
	crossover := 0
	for n := 1; n <= 70; n++ {
		p := crossoverParams(n)
		p.BatchProbe = true
		if p.Cost(MethodPTSBatch) < p.Cost(MethodPTS) {
			crossover = n
			break
		}
	}
	if crossover != 11 {
		t.Fatalf("predicted crossover at N=%d, hand-computed break-even is N=11", crossover)
	}
	// The model's choice between the two flips exactly there, and the
	// flip is monotone: batched stays ahead once it wins.
	for n := 1; n <= 70; n++ {
		p := crossoverParams(n)
		p.BatchProbe = true
		perTuple, batched := p.Cost(MethodPTS), p.Cost(MethodPTSBatch)
		if n < crossover && batched < perTuple {
			t.Errorf("N=%d: batched (%v) beat per-tuple (%v) below the crossover", n, batched, perTuple)
		}
		if n >= crossover && batched >= perTuple {
			t.Errorf("N=%d: per-tuple (%v) beat batched (%v) above the crossover", n, perTuple, batched)
		}
	}
}
