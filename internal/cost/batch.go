package cost

import "math"

// Closed-form estimates for batched probe pushdown: the probing phase of
// the P+ methods re-cast with §3.2's semi-join batching. Instead of one
// invocation per distinct probe binding, the N_J deduplicated bindings
// are packed into OR groups under the term limit M (the selection's terms
// counted once per batch), so
//
//	B = ⌈N_J / ⌊(M − t_sel)/t_J⌋⌉
//
// round trips replace N_J. Invocation cost is paid per batch; each batch
// re-processes the selection's inverted lists while every binding's join
// terms are processed exactly once across the batches; the OR result is
// shipped short-form (capped at the per-batch selection result) and
// attributed back to bindings by relational matching (c_a per document,
// the semi-join method's discipline). Batching therefore trades c_i·N_J
// for c_i·B + c_a·V — the optimizer picks whichever is cheaper, with
// full-scan RTP remaining the third alternative when a selection exists.

// probeBatchTerms returns the conservative per-binding term count of a
// probe on columns J: the sum of the observed maximum instantiation sizes
// (falling back to the mean when no maximum was sampled). Packing is by
// actual terms, so capacity must not be estimated from the mean alone.
func (p *Params) probeBatchTerms(J []int) int {
	n := 0
	for _, i := range J {
		t := p.Preds[i].TermsMax
		if t < p.Preds[i].Terms {
			t = p.Preds[i].Terms
		}
		n += t
	}
	return n
}

// ProbeBatchCapacity is the number of probe bindings one batch holds,
// ⌊(M − t_sel)/t_J⌋, or 0 when even a single binding cannot fit.
func (p *Params) ProbeBatchCapacity(J []int) int {
	per := p.probeBatchTerms(J)
	room := p.M - p.selTermCount()
	if per <= 0 || room < per {
		return 0
	}
	return room / per
}

// ProbeBatchRounds is the number of probe round trips batched probing
// needs: ⌈N_J / capacity⌉, or +Inf when nothing fits a batch.
func (p *Params) ProbeBatchRounds(J []int) float64 {
	c := p.ProbeBatchCapacity(J)
	if c == 0 {
		return math.Inf(1)
	}
	return math.Ceil(p.NDistinct(J) / float64(c))
}

// CostProbeBatched is the batched probing phase on columns J:
//
//	C_PB = c_i·B + c_p·(B·I_sel + N_J·Σ_{i∈J} f_i) + (c_s+c_a)·min(V_{N_J,J}, B·F_sel)
//
// compare CostProbe's c_i·N_J + c_p·I_{N_J,J} + c_s·V_{N_J,J}: invocations
// collapse to B, the selection's list work is paid per batch instead of
// per binding, and attribution adds c_a per shipped document.
func (p *Params) CostProbeBatched(J []int) float64 {
	b := p.ProbeBatchRounds(J)
	if math.IsInf(b, 1) {
		return b
	}
	n := p.NDistinct(J)
	// Every binding's join-term lists are processed exactly once across
	// the batches; the selection's lists once per batch.
	listWork := b*p.SelListWork() + (p.I(n, J) - n*p.SelListWork())
	shipped := p.V(n, J)
	if p.HasSel {
		shipped = math.Min(shipped, b*p.SelFanout)
	} else {
		shipped = math.Min(shipped, b*float64(p.D))
	}
	return p.Costs.CI*b + p.Costs.CP*listWork + (p.Costs.CS+p.Costs.CA)*shipped
}

// CostPTSBatch is batched probing + tuple substitution on probe columns J:
// the probing phase of CostPTS replaced by its batched form, the
// substitution phase unchanged.
func (p *Params) CostPTSBatch(J []int) float64 {
	r := p.NK() * p.JointSel(J)
	K := p.AllColumns()
	return p.CostProbeBatched(J) +
		p.Costs.CI*r + p.Costs.CP*p.I(r, K) + p.substTransmission()*p.V(r, K)
}

// CostPRTPBatch is batched probing + relational text processing on probe
// columns J: the shipped probe matches (already costed with attribution in
// CostProbeBatched) are matched relationally on the remaining predicates,
// and result documents are retrieved long-form when the query needs them.
func (p *Params) CostPRTPBatch(J []int) float64 {
	return p.CostProbeBatched(J) + p.resultTransmission()
}
