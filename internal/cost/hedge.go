package cost

import (
	"math"

	"textjoin/internal/texservice"
)

// Hedged-request cost semantics for the replica routing tier
// (internal/replica): a search that has not answered within the hedge
// budget is raced against a second replica, and the first answer wins.
// Hedging buys tail latency with extra work — the loser's invocation is
// paid in total cost but never on the critical path (the winner defines
// elapsed time). These predictors quantify both sides of that trade so
// the optimizer's books and the experiments can reason about hedging
// the same way they reason about scatter-gather.
//
// The model: per-call latency is "healthy" with probability 1-p and
// "slow" with probability p (a browned-out replica, a GC pause, a
// congested link). The hedge budget is calibrated near the healthy p95,
// so hedges fire almost exactly on the slow fraction p.

// HedgedSearchCost predicts the total and critical-path cost of one
// search routed with hedging, given the probability pHedge that the
// hedge fires. Total work pays the winner's full search plus pHedge
// expected extra invocations (the loser is cancelled before processing
// postings or transmitting documents, so only its c_i is sunk). The
// critical path is the winner's cost alone: the race runs in parallel.
func HedgedSearchCost(c texservice.Costs, pHedge float64, postings, docs int, form texservice.Form) (total, crit float64) {
	pHedge = clamp01(pHedge)
	base := c.SearchCost(postings, docs, form)
	return base + pHedge*c.CI, base
}

// HedgedTailFraction predicts the probability that a hedged call is
// still slow: both the primary and its hedge must independently land in
// the slow fraction p. This is the mechanism behind "hedged p99 stays
// flat while one replica browns out" — with R replicas and one slow,
// the pair-both-slow probability collapses quadratically.
func HedgedTailFraction(p float64) float64 {
	p = clamp01(p)
	return p * p
}

// HedgeOverheadFraction predicts the relative extra total work of
// hedging: expected extra invocations over the unhedged invocation+data
// cost. It stays small when the budget is calibrated (pHedge ≈ the
// slow fraction) and the data terms dominate — the regime hedging is
// meant for.
func HedgeOverheadFraction(c texservice.Costs, pHedge float64, postings, docs int, form texservice.Form) float64 {
	base := c.SearchCost(postings, docs, form)
	if base <= 0 {
		return 0
	}
	return clamp01(pHedge) * c.CI / base
}

// UnhedgedSlowdown predicts the expected per-call latency multiplier of
// routing WITHOUT hedging against a fleet whose slow replicas are
// slowFactor times their healthy cost: the slow fraction p of calls
// pays the full degradation. Compare with the hedged expectation, where
// only HedgedTailFraction(p) of calls does — the gap is the experiment
// the replica chaos benchmark measures.
func UnhedgedSlowdown(p, slowFactor float64) float64 {
	p = clamp01(p)
	if slowFactor < 1 {
		slowFactor = 1
	}
	return 1 - p + p*slowFactor
}

// HedgedSlowdown is the hedged counterpart of UnhedgedSlowdown: a call
// is degraded only when primary AND hedge are both slow; a fired hedge
// that rescues the call pays the budget (as a fraction of healthy cost,
// budgetFactor ≥ 0) before the fast answer lands.
func HedgedSlowdown(p, slowFactor, budgetFactor float64) float64 {
	p = clamp01(p)
	if slowFactor < 1 {
		slowFactor = 1
	}
	if budgetFactor < 0 {
		budgetFactor = 0
	}
	both := p * p
	rescued := p - both
	return (1 - p) + rescued*(1+budgetFactor) + both*slowFactor
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
