package cost_test

import (
	"fmt"

	"textjoin/internal/cost"
	"textjoin/internal/texservice"
)

// Example reproduces the paper's Q3-style decision: given the Table-1
// parameters of a two-predicate foreign join, the model prices every
// method and picks probing with tuple substitution, including which
// column to probe on.
func Example() {
	p := &cost.Params{
		Costs: texservice.DefaultCosts(), // c_i=3, c_p=1e-5, c_s=0.015, c_l=4
		D:     10000,                     // documents
		M:     70,                        // Mercury's term limit
		G:     1,                         // fully correlated model
		N:     100,                       // joining tuples
		Preds: []cost.Pred{
			{Sel: 0.16, Fanout: 0.4, Distinct: 25, Terms: 1},  // project.name in title
			{Sel: 0.30, Fanout: 0.9, Distinct: 100, Terms: 1}, // member in author
		},
	}
	for _, m := range []cost.Method{cost.MethodTS, cost.MethodPTS} {
		fmt.Printf("%-5s %6.1fs\n", m, p.Cost(m))
	}
	J, _ := p.OptimalProbe(p.CostPTS)
	fmt.Printf("probe on predicate %d (N_1=%d, s_1=%.2f)\n",
		J[0], p.Preds[J[0]].Distinct, p.Preds[J[0]].Sel)
	// Output:
	// TS     300.6s
	// P+TS   123.2s
	// probe on predicate 0 (N_1=25, s_1=0.16)
}
