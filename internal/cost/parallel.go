package cost

import (
	"math"

	"textjoin/internal/texservice"
)

// Parallel cost semantics for the document-sharded federation
// (internal/shard): one logical search fanned out over n shards pays n
// invocation overheads in total work, but the shards run concurrently, so
// elapsed time is bounded by the most expensive shard. Under the modulo
// partition each shard holds ~1/n of every posting list and transmits
// ~1/n of the matching documents, so the critical path divides the
// data-dependent terms by n while keeping one c_i.

// ScatterSearchCost predicts the total and critical-path cost of fanning
// one search over n shards, given the unsharded search's postings and
// transmitted-document counts. The total sums every shard's charge; the
// critical path charges one invocation plus the largest shard's share
// (ceiling division — remainders land on some shard).
func ScatterSearchCost(c texservice.Costs, n, postings, docs int, form texservice.Form) (total, crit float64) {
	if n < 1 {
		n = 1
	}
	trans := c.CS
	if form == texservice.FormLong {
		trans = c.CL
	}
	total = float64(n)*c.CI + c.CP*float64(postings) + trans*float64(docs)
	crit = c.CI + c.CP*ceilDiv(postings, n) + trans*ceilDiv(docs, n)
	return total, crit
}

// ScatterSpeedup is the predicted elapsed-time speedup of an n-way
// scatter-gather search over the single-backend execution: sequential
// cost divided by critical-path cost. Invocation overhead c_i is not
// parallelized (every shard pays it, and the critical path keeps one), so
// the speedup approaches n only for data-dominated searches.
func ScatterSpeedup(c texservice.Costs, n, postings, docs int, form texservice.Form) float64 {
	single, _ := ScatterSearchCost(c, 1, postings, docs, form)
	_, crit := ScatterSearchCost(c, n, postings, docs, form)
	if crit <= 0 {
		return 1
	}
	return single / crit
}

func ceilDiv(a, n int) float64 {
	return math.Ceil(float64(a) / float64(n))
}
