package cost

import (
	"math"
	"testing"

	"textjoin/internal/texservice"
)

func TestHedgedSearchCost(t *testing.T) {
	c := texservice.DefaultCosts()
	base := c.SearchCost(10000, 50, texservice.FormShort)

	total, crit := HedgedSearchCost(c, 0, 10000, 50, texservice.FormShort)
	if total != base || crit != base {
		t.Errorf("pHedge=0: total=%g crit=%g, want both %g", total, crit, base)
	}
	total, crit = HedgedSearchCost(c, 1, 10000, 50, texservice.FormShort)
	if want := base + c.CI; math.Abs(total-want) > 1e-12 {
		t.Errorf("pHedge=1: total=%g, want %g", total, want)
	}
	if crit != base {
		t.Errorf("pHedge=1: crit=%g, want %g (hedges never lengthen the critical path)", crit, base)
	}
	// Out-of-range probabilities clamp rather than corrupt the books.
	if tot2, _ := HedgedSearchCost(c, 7, 10000, 50, texservice.FormShort); tot2 != total {
		t.Errorf("pHedge=7 not clamped: %g vs %g", tot2, total)
	}
}

func TestHedgedTailFraction(t *testing.T) {
	if got := HedgedTailFraction(0.1); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("p=0.1: %g, want 0.01", got)
	}
	if got := HedgedTailFraction(0); got != 0 {
		t.Errorf("p=0: %g", got)
	}
	if got := HedgedTailFraction(1); got != 1 {
		t.Errorf("p=1: %g", got)
	}
}

func TestHedgeOverheadFraction(t *testing.T) {
	c := texservice.DefaultCosts()
	// Data-dominated search: overhead must be a small fraction.
	f := HedgeOverheadFraction(c, 0.05, 1_000_000, 500, texservice.FormShort)
	if f <= 0 || f > 0.05 {
		t.Errorf("data-dominated overhead fraction = %g, want small positive", f)
	}
	// Invocation-dominated search hedging every call: approaches c_i/base ≈ 1.
	f = HedgeOverheadFraction(c, 1, 0, 0, texservice.FormShort)
	if math.Abs(f-1) > 1e-9 {
		t.Errorf("invocation-only overhead fraction = %g, want 1", f)
	}
}

// TestHedgeRescuesTheTail: the model predicts the experiment's shape —
// without hedging a 10% slow fraction at 16x degrades the expectation
// by >2x, with hedging the degradation collapses toward quadratic.
func TestHedgeRescuesTheTail(t *testing.T) {
	const p, slow = 0.5, 16.0 // one of two replicas browned out 16x
	un := UnhedgedSlowdown(p, slow)
	hd := HedgedSlowdown(p, slow, 0.1)
	if un < 5 {
		t.Errorf("unhedged slowdown %g, want >= 5 (half the calls pay 16x)", un)
	}
	if hd >= un {
		t.Errorf("hedged slowdown %g vs unhedged %g: hedging is not predicted to help", hd, un)
	}
	// The independence model is the pessimistic bound: the router hedges to
	// a DIFFERENT replica, so with one slow replica in two the real
	// both-slow probability is far below p². At small slow fractions the
	// quadratic collapse dominates and hedging wins big.
	if hd2, un2 := HedgedSlowdown(0.1, slow, 0.1), UnhedgedSlowdown(0.1, slow); hd2 >= un2/2 {
		t.Errorf("p=0.1: hedged %g vs unhedged %g, want >= 2x improvement", hd2, un2)
	}
	// Monotonicity: more slow probability can never make hedging look
	// better than it is.
	if HedgedSlowdown(0.2, slow, 0.1) > HedgedSlowdown(0.6, slow, 0.1) {
		t.Error("hedged slowdown not monotone in p")
	}
}
