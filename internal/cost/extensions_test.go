package cost

import (
	"math"
	"testing"
)

func TestCostTSBatched(t *testing.T) {
	p := twoPredParams() // NK=100, 2 terms per tuple, M=70 → 35/batch → 3 batches
	full := p.CostTS()
	batched := p.CostTSBatched()
	if batched >= full {
		t.Fatalf("batched TS (%v) not cheaper than TS (%v)", batched, full)
	}
	// Invocation component shrinks from 100·c_i to 3·c_i; everything
	// else is identical.
	wantDelta := p.Costs.CI * (100 - 3)
	if math.Abs((full-batched)-wantDelta) > 1e-9 {
		t.Fatalf("delta = %v, want %v", full-batched, wantDelta)
	}
	// A conjunct that does not fit is infeasible.
	p2 := twoPredParams()
	p2.Preds[0].Terms = 80
	if !math.IsInf(p2.CostTSBatched(), 1) {
		t.Fatal("oversized conjunct not rejected")
	}
}

func TestCostPTSLazyVsEager(t *testing.T) {
	p := twoPredParams()
	J := []int{0}
	eager := p.CostPTS(J)
	lazy := p.CostPTSLazy(J)
	if math.IsInf(lazy, 1) || lazy <= 0 {
		t.Fatalf("lazy cost = %v", lazy)
	}
	// With N_J ≪ N_K and low selectivity, eager probing wins: it sends
	// N_J probes (25) + R full queries, while lazy sends a full query
	// per distinct binding that is not skipped.
	if eager >= lazy {
		t.Fatalf("eager (%v) should beat lazy (%v) when N_J ≪ N_K and s is low", eager, lazy)
	}
	// With selectivity ≈ 1 lazy approaches TS (no probes wasted), while
	// eager pays the probing phase on top.
	p2 := twoPredParams()
	p2.Preds[0].Sel = 1
	p2.Preds[1].Sel = 1
	lazyHot := p2.CostPTSLazy([]int{0})
	eagerHot := p2.CostPTS([]int{0})
	if lazyHot >= eagerHot {
		t.Fatalf("lazy (%v) should beat eager (%v) when probes always succeed", lazyHot, eagerHot)
	}
	if lazyHot < p2.CostTS()-1e-9 {
		t.Fatalf("lazy (%v) cannot beat TS (%v) at s=1", lazyHot, p2.CostTS())
	}
}
