package cost

import "math"

// Probe-column optimization (§5). The number of candidate probe sets is
// 2^k − 1, but Theorem 5.3 shows that for 1-correlated cost models the
// optimal set has at most 2 columns, and for g-correlated models at most
// min(k, 2g): the argument is that given any optimal set J one can keep
// the g smallest-selectivity columns (which fix S_{g,J}, hence the
// substitution phase) and the g smallest-fanout columns (which fix
// F_{g,J}, hence the probe transmission), and dropping the rest only
// shrinks N_J and the probe's list work. OptimalProbe therefore searches
// subsets up to that bound, giving O(k^2) work for the paper's fully
// correlated model; ExhaustiveOptimalProbe searches everything and is the
// test oracle for the theorem.

// ProbeBound returns the maximum probe-set size worth considering,
// min(k, 2g).
func (p *Params) ProbeBound() int {
	k := p.K()
	if b := 2 * p.G; b < k {
		return b
	}
	return k
}

// OptimalProbe returns the probe-column set minimizing costFn (typically
// (*Params).CostPTS or (*Params).CostPRTP) among nonempty subsets of size
// at most ProbeBound, together with its cost.
func (p *Params) OptimalProbe(costFn func([]int) float64) ([]int, float64) {
	return p.bestSubset(costFn, p.ProbeBound())
}

// ExhaustiveOptimalProbe searches all nonempty probe sets.
func (p *Params) ExhaustiveOptimalProbe(costFn func([]int) float64) ([]int, float64) {
	return p.bestSubset(costFn, p.K())
}

// bestSubset enumerates nonempty subsets of {0..k-1} of size ≤ maxSize.
// Ties favour smaller sets (probes are pure overhead at equal cost), then
// lexicographically smaller ones, so the choice is deterministic.
func (p *Params) bestSubset(costFn func([]int) float64, maxSize int) ([]int, float64) {
	k := p.K()
	var best []int
	bestCost := math.Inf(1)
	subset := make([]int, 0, maxSize)
	var rec func(start int)
	rec = func(start int) {
		if len(subset) > 0 {
			if c := costFn(subset); c < bestCost ||
				(c == bestCost && best != nil && len(subset) < len(best)) {
				bestCost = c
				best = append([]int(nil), subset...)
			}
		}
		if len(subset) == maxSize {
			return
		}
		for i := start; i < k; i++ {
			subset = append(subset, i)
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	return best, bestCost
}
