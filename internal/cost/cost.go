// Package cost implements the paper's cost model (§4) for foreign joins
// with a Boolean text retrieval system, and the probe-column optimization
// of §5.
//
// All formulas reflect total resource usage in seconds under the calibrated
// constants of §4.1. Following the paper we omit the (method-independent)
// cost of reading the relation, and ignore cache maintenance costs.
//
// # Conventions
//
// A foreign join has k join predicates; predicate i binds relation column i
// to text field i and has selectivity s_i (probability that a value of
// column i occurs in field i of some document), fanout f_i (average number
// of documents a value matches, unconditional — so n substituted searches
// are expected to transmit n·F documents in total), and N_i distinct column
// values. Joint statistics use the g-correlated model of §4.2: with
// s_(1) ≤ … ≤ s_(k), S_{g,K} = ∏_{j≤g} s_(j), and with f_(1) ≤ … ≤ f_(k),
// F_{g,K} = ∏_{j≤g} f_(j) / D^(g-1). g=1 is the fully correlated model the
// paper's experiments use; g=k assumes independent predicates.
//
// A text selection (e.g. 'belief update' in mercury.title) participates in
// every search a method sends; its inverted-list length (SelPostings) is
// charged per search and its fanout (SelFanout) enters joint fanouts as the
// fanout of a pseudo-predicate.
package cost

import (
	"fmt"
	"math"
	"sort"

	"textjoin/internal/texservice"
)

// Pred carries the per-predicate statistics of one foreign join predicate.
type Pred struct {
	// Sel is s_i: the probability that a column value occurs in the field.
	Sel float64
	// Fanout is f_i: the average number of matching documents per value
	// (unconditional: values that match nothing count as zero).
	Fanout float64
	// Distinct is N_i: the number of distinct values in the column.
	Distinct int
	// Terms is the number of basic search terms one instantiation of this
	// predicate contributes (1 for a single word, w for a w-word phrase).
	Terms int
	// TermsMax is the largest term count any sampled instantiation used
	// (0 = unknown, fall back to Terms). Batch packing is governed by
	// actual per-binding term counts, so batched-probe capacity estimates
	// use this conservative maximum rather than the mean.
	TermsMax int
}

// Params bundles everything the cost formulas need (the paper's Table 1).
type Params struct {
	Costs texservice.Costs
	// D is the total number of documents in the text database.
	D int
	// M is the maximum number of search terms per text query.
	M int
	// G is the correlation parameter of the g-correlated model (§4.2);
	// G=1 is full correlation.
	G int
	// N is the number of joining tuples.
	N int
	// Preds are the foreign join predicates (k = len(Preds)).
	Preds []Pred
	// HasSel reports whether the query has a text selection condition.
	HasSel bool
	// SelFanout is the number of documents matching the text selection.
	SelFanout float64
	// SelPostings is the total inverted-list length processed for the
	// selection's terms in one search.
	SelPostings float64
	// SelTerms is the number of basic search terms in the selection.
	SelTerms int
	// LongForm records whether the query needs full documents in its
	// result (the paper's experiments do; a docid-only semi-join does not).
	LongForm bool
	// BatchProbe enables the batched-probe methods (MethodPTSBatch,
	// MethodPRTPBatch) in Applicable, Best and Ranking. Off by default so
	// predictions and plan choices without the feature are unchanged; the
	// optimizer sets it when batching is requested and the service can
	// actually batch (short-form probe fields or batched invocation).
	BatchProbe bool
}

// Validate checks the parameters for consistency.
func (p *Params) Validate() error {
	if p.D <= 0 {
		return fmt.Errorf("cost: D must be positive")
	}
	if p.M <= 0 {
		return fmt.Errorf("cost: M must be positive")
	}
	if p.G < 1 {
		return fmt.Errorf("cost: G must be at least 1")
	}
	if p.N < 0 {
		return fmt.Errorf("cost: N must be nonnegative")
	}
	if len(p.Preds) == 0 {
		return fmt.Errorf("cost: need at least one join predicate")
	}
	for i, pr := range p.Preds {
		if pr.Sel < 0 || pr.Sel > 1 {
			return fmt.Errorf("cost: predicate %d selectivity %v out of [0,1]", i, pr.Sel)
		}
		if pr.Fanout < 0 {
			return fmt.Errorf("cost: predicate %d fanout %v is negative", i, pr.Fanout)
		}
		if pr.Distinct < 0 {
			return fmt.Errorf("cost: predicate %d distinct count %d is negative", i, pr.Distinct)
		}
		if pr.Terms < 1 {
			return fmt.Errorf("cost: predicate %d term count %d must be at least 1", i, pr.Terms)
		}
		if pr.TermsMax < 0 {
			return fmt.Errorf("cost: predicate %d max term count %d is negative", i, pr.TermsMax)
		}
	}
	if p.HasSel && (p.SelFanout < 0 || p.SelPostings < 0 || p.SelTerms < 1) {
		return fmt.Errorf("cost: invalid text selection statistics")
	}
	return nil
}

// K returns the number of join predicates.
func (p *Params) K() int { return len(p.Preds) }

// AllColumns returns the index set {0,…,k-1}.
func (p *Params) AllColumns() []int {
	out := make([]int, len(p.Preds))
	for i := range out {
		out[i] = i
	}
	return out
}

// NDistinct returns N_J, the number of distinct value combinations over the
// columns in J, estimated as min(∏_{i∈J} N_i, N). The paper notes this is
// an overestimate, which deliberately biases against probing.
func (p *Params) NDistinct(J []int) float64 {
	prod := 1.0
	for _, i := range J {
		prod *= float64(p.Preds[i].Distinct)
		if prod >= float64(p.N) {
			return float64(p.N)
		}
	}
	return math.Min(prod, float64(p.N))
}

// JointSel returns S_{g,J}: the product of the g smallest selectivities
// among the predicates in J (all of them when |J| < g).
func (p *Params) JointSel(J []int) float64 {
	sels := make([]float64, 0, len(J))
	for _, i := range J {
		sels = append(sels, p.Preds[i].Sel)
	}
	sort.Float64s(sels)
	g := p.G
	if g > len(sels) {
		g = len(sels)
	}
	out := 1.0
	for _, s := range sels[:g] {
		out *= s
	}
	return out
}

// JointFanout returns F_{g,J}: ∏ of the g smallest fanouts over D^(g-1).
// When withSel is true the text selection participates as a pseudo-
// predicate with fanout SelFanout, modelling that every search a method
// sends also carries the selection conjunct.
func (p *Params) JointFanout(J []int, withSel bool) float64 {
	fans := make([]float64, 0, len(J)+1)
	for _, i := range J {
		fans = append(fans, p.Preds[i].Fanout)
	}
	if withSel && p.HasSel {
		fans = append(fans, p.SelFanout)
	}
	if len(fans) == 0 {
		return 0
	}
	sort.Float64s(fans)
	g := p.G
	if g > len(fans) {
		g = len(fans)
	}
	out := 1.0
	for _, f := range fans[:g] {
		out *= f
	}
	for j := 1; j < g; j++ {
		out /= float64(p.D)
	}
	return out
}

// V returns V_{n,J}: the expected total number of documents across n
// result sets of searches instantiated on the columns J (selection
// included when present): n × F_{g,J∪sel}.
func (p *Params) V(n float64, J []int) float64 {
	return n * p.JointFanout(J, true)
}

// U returns U_{n,J}: the expected number of distinct documents matched by
// n searches, assuming terms of different tuples occur independently:
// D × (1 − (1 − F/D)^n).
func (p *Params) U(n float64, J []int) float64 {
	f := p.JointFanout(J, true)
	d := float64(p.D)
	if f >= d {
		return d
	}
	return d * (1 - math.Pow(1-f/d, n))
}

// I returns I_{n,J}: the expected total inverted-list length processed by
// n searches instantiated on the columns J, n × (Σ_{i∈J} f_i +
// SelPostings). A term's list length equals its document frequency under
// the paper's one-posting-per-document assumption.
func (p *Params) I(n float64, J []int) float64 {
	per := p.SelListWork()
	for _, i := range J {
		per += p.Preds[i].Fanout
	}
	return n * per
}

// SelListWork returns the inverted-list length of the text selection terms
// (0 without a selection).
func (p *Params) SelListWork() float64 {
	if !p.HasSel {
		return 0
	}
	return p.SelPostings
}

// TermsPerTuple returns the number of basic search terms one tuple's
// substituted conjunct contributes (Σ_i Terms_i).
func (p *Params) TermsPerTuple() int {
	n := 0
	for _, pr := range p.Preds {
		n += pr.Terms
	}
	return n
}

// NK returns the number of substituted searches the distinct-binding TS
// variant sends: the distinct count over all join columns.
func (p *Params) NK() float64 { return p.NDistinct(p.AllColumns()) }

// ResultDistinctDocs estimates the number of distinct documents in the
// final join result: the distinct documents matched over all NK
// instantiations, capped by the selection result when present.
func (p *Params) ResultDistinctDocs() float64 {
	u := p.U(p.NK(), p.AllColumns())
	if p.HasSel {
		u = math.Min(u, p.SelFanout)
	}
	return u
}
