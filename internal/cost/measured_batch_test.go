package cost_test

import (
	"context"
	"math"
	"testing"

	"textjoin/internal/cost"
	"textjoin/internal/join"
	"textjoin/internal/stats"
	"textjoin/internal/workload"
)

// Measured golden for the batched-probe closed forms: on the workload
// corpus at the paper's Q3 operating point (M = 70), the model's round
// trips and invocation charges must match what the meter actually
// records, and the overall batched cost estimate must stay within the
// repository's 50% model-accuracy budget of the measured charge.
//
// This test lives outside package cost because it drives the estimator
// and the executable probing code (stats → cost would cycle otherwise).

func q3Fixture(t *testing.T) (*workload.Scenario, *cost.Params) {
	t.Helper()
	c := workload.NewCorpus(workload.CorpusConfig{Docs: 2000, Seed: 1})
	sc, err := workload.ScenarioByName(c, "Q3")
	if err != nil {
		t.Fatal(err)
	}
	estSvc, err := sc.Service()
	if err != nil {
		t.Fatal(err)
	}
	est := stats.New(estSvc, stats.WithSampleSize(10000))
	p, err := est.BuildParams(sc.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.BatchProbe = true
	return sc, p
}

// runProbe executes one probing pass on fresh service state and returns
// its stats.
func runProbe(t *testing.T, sc *workload.Scenario, cols []string, batched bool) join.Stats {
	t.Helper()
	svc, err := sc.Service()
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := join.ProbeReduceOpts(context.Background(), sc.Spec, cols, svc,
		join.ProbeOpts{Batched: batched})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBatchedProbeRoundTripsMeasured pins ProbeBatchRounds against the
// meter: per-tuple probing on the name column sends one search per
// distinct binding (N_J = 25), batching packs them under M = 70 into the
// single predicted round trip — a 25x reduction at the paper's term
// limit.
func TestBatchedProbeRoundTripsMeasured(t *testing.T) {
	sc, p := q3Fixture(t)
	J := []int{0} // probe on name (25 distinct single-word bindings)
	cols := []string{sc.Spec.Preds[0].Column}

	plain := runProbe(t, sc, cols, false)
	if want := p.NDistinct(J); float64(plain.Probes) != want {
		t.Errorf("per-tuple probing sent %d searches, model says N_J = %v", plain.Probes, want)
	}
	if plain.Probes != plain.Usage.Searches {
		t.Errorf("probing charged %d searches for %d probes", plain.Usage.Searches, plain.Probes)
	}

	batched := runProbe(t, sc, cols, true)
	if want := p.ProbeBatchRounds(J); float64(batched.Probes) != want {
		t.Errorf("batched probing sent %d round trips, model says %v", batched.Probes, want)
	}
	if batched.Probes != batched.Usage.Searches {
		t.Errorf("batched probing charged %d searches for %d rounds", batched.Usage.Searches, batched.Probes)
	}
	if batched.BatchRounds != batched.Probes {
		t.Errorf("%d of %d round trips batched; single-word bindings should all pack",
			batched.BatchRounds, batched.Probes)
	}
	if plain.Probes < 10*batched.Probes {
		t.Errorf("round trips %d → %d: less than the 10x reduction batching must deliver at M=70",
			plain.Probes, batched.Probes)
	}
}

// TestBatchedProbeCostMeasured holds the closed-form cost estimate to the
// repository's model-accuracy budget: the predicted batched probing cost
// stays within 50% of the simulated seconds the meter actually charges,
// on the probe set the optimizer itself would pick.
func TestBatchedProbeCostMeasured(t *testing.T) {
	sc, p := q3Fixture(t)
	J, predicted := p.OptimalProbe(p.CostProbeBatched)
	if math.IsInf(predicted, 1) {
		t.Fatal("optimal batched probe is unbatchable")
	}
	st := runProbe(t, sc, stats.ProbeColumnsFor(sc.Spec, J), true)
	measured := st.Usage.Cost
	if measured <= 0 {
		t.Fatalf("measured cost %v, want positive", measured)
	}
	if ratio := predicted / measured; ratio < 0.5 || ratio > 1.5 {
		t.Errorf("predicted batched probe cost %v vs measured %v (ratio %.2f), want within 50%%",
			predicted, measured, ratio)
	}
}
