package cost

import (
	"fmt"
	"math"
)

// Method identifies a foreign-join execution method (§3).
type Method uint8

// The join methods of §3. MethodSJRTP covers both the pure semi-join and
// its RTP generalization (the number of invocations and transmissions are
// the same; only the relational post-processing differs).
const (
	MethodTS Method = iota
	MethodRTP
	MethodSJRTP
	MethodPTS
	MethodPRTP
	// MethodPTSBatch and MethodPRTPBatch are the probing methods with the
	// probing phase batched (OR-packed under the term limit, see batch.go).
	// They participate only when Params.BatchProbe is set.
	MethodPTSBatch
	MethodPRTPBatch
)

// AllMethods lists every method in presentation order.
var AllMethods = []Method{MethodTS, MethodRTP, MethodSJRTP, MethodPTS, MethodPRTP, MethodPTSBatch, MethodPRTPBatch}

// String returns the paper's abbreviation.
func (m Method) String() string {
	switch m {
	case MethodTS:
		return "TS"
	case MethodRTP:
		return "RTP"
	case MethodSJRTP:
		return "SJ+RTP"
	case MethodPTS:
		return "P+TS"
	case MethodPRTP:
		return "P+RTP"
	case MethodPTSBatch:
		return "P+TS(batched)"
	case MethodPRTPBatch:
		return "P+RTP(batched)"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Applicable reports whether the method can evaluate a join with these
// parameters:
//
//   - TS is universally applicable.
//   - RTP needs a text selection (it sends only the selection, §3.2).
//   - SJ+RTP needs the search-term limit to leave room for at least one
//     tuple conjunct per batch.
//   - P+TS and P+RTP need at least two join predicates, so a proper
//     nonempty probe-column subset exists (§3.3).
//   - The batched probe variants additionally need BatchProbe enabled
//     (the service must be able to batch; see batch.go).
func (p *Params) Applicable(m Method) bool {
	switch m {
	case MethodTS:
		return true
	case MethodRTP:
		return p.HasSel
	case MethodSJRTP:
		return p.M-p.selTermCount() >= p.TermsPerTuple()
	case MethodPTS, MethodPRTP:
		return p.K() >= 2
	case MethodPTSBatch, MethodPRTPBatch:
		return p.BatchProbe && p.K() >= 2
	default:
		return false
	}
}

func (p *Params) selTermCount() int {
	if !p.HasSel {
		return 0
	}
	return p.SelTerms
}

// resultTransmission is the long-form transmission of final result
// documents shared by the RTP-family methods: each distinct matching
// document is retrieved once. Zero when the query does not need long
// forms.
func (p *Params) resultTransmission() float64 {
	if !p.LongForm {
		return 0
	}
	return p.Costs.CL * p.ResultDistinctDocs()
}

// substTransmission is the per-search transmission constant for
// substituted searches (TS and the substitution phase of P+TS): long form
// when the query needs documents, short form otherwise.
func (p *Params) substTransmission() float64 {
	if p.LongForm {
		return p.Costs.CL
	}
	return p.Costs.CS
}

// CostTS is the tuple substitution cost (§4.3), for the distinct-binding
// variant: one search per distinct binding of the join columns.
//
//	C_TS = c_i·N_K + c_p·I_{N_K,K} + c_l·V_{N_K,K}
func (p *Params) CostTS() float64 {
	n := p.NK()
	K := p.AllColumns()
	return p.Costs.CI*n + p.Costs.CP*p.I(n, K) + p.substTransmission()*p.V(n, K)
}

// CostTSBatched models tuple substitution over a batched-invocation text
// system (the §8 extension): processing and transmission equal CostTS,
// but the invocation cost is paid once per batch of ⌊M/t⌋ substituted
// queries instead of once per query.
func (p *Params) CostTSBatched() float64 {
	perQuery := p.TermsPerTuple() + p.selTermCount()
	if perQuery > p.M {
		return math.Inf(1)
	}
	perBatch := p.M / perQuery
	n := p.NK()
	batches := math.Ceil(n / float64(perBatch))
	K := p.AllColumns()
	return p.Costs.CI*batches + p.Costs.CP*p.I(n, K) + p.substTransmission()*p.V(n, K)
}

// CostPTSLazy models §3.3's query-first probe-cache algorithm (the lazy
// P+TS variant): every binding whose probe value is not known to fail
// sends its full query, and a probe is sent once per distinct failing
// probe value. With S the probe success probability and N_J distinct
// probe values, full queries ≈ S·N_K + (1−S)·N_J and probes ≈ (1−S)·N_J
// (successful full queries mark the cache without a probe; bindings that
// fail despite a successful probe send no probe either, so this slightly
// overestimates probes for mid-range selectivities).
func (p *Params) CostPTSLazy(J []int) float64 {
	s := p.JointSel(J)
	nj := p.NDistinct(J)
	nk := p.NK()
	fullQueries := s*nk + (1-s)*nj
	probes := (1 - s) * nj
	K := p.AllColumns()
	return p.Costs.CI*(fullQueries+probes) +
		p.Costs.CP*(p.I(fullQueries, K)+p.I(probes, J)) +
		p.Costs.CS*p.V(probes, J) +
		p.substTransmission()*p.V(s*nk, K)
}

// CostProbe is the cost of the probing phase on columns J (§4.3):
//
//	C_P = c_i·N_J + c_p·I_{N_J,J} + c_s·V_{N_J,J}
//
// Probes request the short form regardless of the query's output needs.
func (p *Params) CostProbe(J []int) float64 {
	n := p.NDistinct(J)
	return p.Costs.CI*n + p.Costs.CP*p.I(n, J) + p.Costs.CS*p.V(n, J)
}

// CostPTS is probing + tuple substitution on probe columns J (§4.3):
//
//	C_{P+TS} = C_P + c_i·R + c_p·I_{R,K} + c_l·V_{R,K},  R = N_K·S_{g,J}
func (p *Params) CostPTS(J []int) float64 {
	r := p.NK() * p.JointSel(J)
	K := p.AllColumns()
	return p.CostProbe(J) +
		p.Costs.CI*r + p.Costs.CP*p.I(r, K) + p.substTransmission()*p.V(r, K)
}

// CostRTP is relational text processing (§3.2): one search carrying only
// the text selection, shipping its short-form matches to the relational
// side, string-matching them there, and finally retrieving the documents
// of the result long-form if the query needs them.
func (p *Params) CostRTP() float64 {
	if !p.HasSel {
		return math.Inf(1)
	}
	return p.Costs.CI +
		p.Costs.CP*p.SelPostings +
		p.Costs.CS*p.SelFanout +
		p.Costs.CA*p.SelFanout +
		p.resultTransmission()
}

// SJBatches returns the number of semi-join searches needed: tuples are
// packed into OR groups subject to the term limit M, with the selection's
// terms counted in every batch (§3.2).
func (p *Params) SJBatches() float64 {
	perTuple := p.TermsPerTuple()
	room := p.M - p.selTermCount()
	if room < perTuple {
		return math.Inf(1)
	}
	perBatch := room / perTuple
	return math.Ceil(p.NK() / float64(perBatch))
}

// CostSJRTP is the semi-join method followed by relational text processing
// (§3.2): ⌈N_K/B⌉ batched searches, each processing the selection lists
// plus its tuples' join-term lists, shipping short-form matches, matching
// them relationally, and retrieving result documents long-form if needed.
func (p *Params) CostSJRTP() float64 {
	nb := p.SJBatches()
	if math.IsInf(nb, 1) {
		return nb
	}
	nk := p.NK()
	K := p.AllColumns()
	// Shipped documents: every tuple's expected matches, but no batch can
	// ship more than the selection's matches (its result is a subset of
	// the selection result when a selection exists).
	shipped := p.V(nk, K)
	if p.HasSel {
		shipped = math.Min(shipped, nb*p.SelFanout)
	} else {
		shipped = math.Min(shipped, nb*float64(p.D))
	}
	// Each batch processes the selection's lists once; every tuple's join
	// terms are processed exactly once across all batches.
	joinListWork := p.I(nk, K) - nk*p.SelListWork()
	return p.Costs.CI*nb +
		p.Costs.CP*(nb*p.SelListWork()+joinListWork) +
		p.Costs.CS*shipped +
		p.Costs.CA*shipped +
		p.resultTransmission()
}

// CostPRTP is probing + relational text processing on probe columns J
// (§3.3, Example 3.6): probes carry the selection and the probe-column
// predicates and request the short form; their matches are shipped and the
// remaining join predicates are evaluated relationally.
func (p *Params) CostPRTP(J []int) float64 {
	n := p.NDistinct(J)
	shipped := p.V(n, J)
	return p.Costs.CI*n +
		p.Costs.CP*p.I(n, J) +
		p.Costs.CS*shipped +
		p.Costs.CA*shipped +
		p.resultTransmission()
}

// Cost returns the method's cost, optimizing probe columns for the
// probe-based methods. It returns +Inf for inapplicable methods.
func (p *Params) Cost(m Method) float64 {
	if !p.Applicable(m) {
		return math.Inf(1)
	}
	switch m {
	case MethodTS:
		return p.CostTS()
	case MethodRTP:
		return p.CostRTP()
	case MethodSJRTP:
		return p.CostSJRTP()
	case MethodPTS:
		_, c := p.OptimalProbe(p.CostPTS)
		return c
	case MethodPRTP:
		_, c := p.OptimalProbe(p.CostPRTP)
		return c
	case MethodPTSBatch:
		_, c := p.OptimalProbe(p.CostPTSBatch)
		return c
	case MethodPRTPBatch:
		_, c := p.OptimalProbe(p.CostPRTPBatch)
		return c
	default:
		return math.Inf(1)
	}
}

// Best returns the cheapest applicable method and its predicted cost.
func (p *Params) Best() (Method, float64) {
	best := MethodTS
	bestCost := math.Inf(1)
	for _, m := range AllMethods {
		if c := p.Cost(m); c < bestCost {
			best, bestCost = m, c
		}
	}
	return best, bestCost
}

// Ranking returns the applicable methods ordered by increasing predicted
// cost.
func (p *Params) Ranking() []Method {
	var ms []Method
	for _, m := range AllMethods {
		if p.Applicable(m) {
			ms = append(ms, m)
		}
	}
	costs := map[Method]float64{}
	for _, m := range ms {
		costs[m] = p.Cost(m)
	}
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && costs[ms[j]] < costs[ms[j-1]]; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
	return ms
}
