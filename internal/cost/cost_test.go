package cost

import (
	"math"
	"testing"

	"textjoin/internal/texservice"
)

// invocationOnly charges only c_i, the regime of Examples 5.1/5.2.
func invocationOnly() texservice.Costs {
	return texservice.Costs{CI: 1}
}

func twoPredParams() *Params {
	return &Params{
		Costs: texservice.DefaultCosts(),
		D:     10000,
		M:     70,
		G:     1,
		N:     100,
		Preds: []Pred{
			{Sel: 0.16, Fanout: 2, Distinct: 25, Terms: 1},
			{Sel: 0.5, Fanout: 5, Distinct: 80, Terms: 1},
		},
		LongForm: true,
	}
}

func TestValidate(t *testing.T) {
	good := twoPredParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.G = 0 },
		func(p *Params) { p.N = -1 },
		func(p *Params) { p.Preds = nil },
		func(p *Params) { p.Preds[0].Sel = 1.5 },
		func(p *Params) { p.Preds[0].Sel = -0.1 },
		func(p *Params) { p.Preds[0].Fanout = -1 },
		func(p *Params) { p.Preds[0].Distinct = -1 },
		func(p *Params) { p.Preds[0].Terms = 0 },
		func(p *Params) { p.HasSel = true; p.SelTerms = 0 },
		func(p *Params) { p.HasSel = true; p.SelTerms = 1; p.SelFanout = -2 },
	}
	for i, mutate := range mutations {
		p := twoPredParams()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNDistinct(t *testing.T) {
	p := twoPredParams()
	if got := p.NDistinct([]int{0}); got != 25 {
		t.Errorf("N_{0} = %v, want 25", got)
	}
	if got := p.NDistinct([]int{1}); got != 80 {
		t.Errorf("N_{1} = %v, want 80", got)
	}
	// Product 25*80 = 2000 exceeds N=100 → capped.
	if got := p.NDistinct([]int{0, 1}); got != 100 {
		t.Errorf("N_{0,1} = %v, want 100 (capped at N)", got)
	}
}

func TestJointSelCorrelatedVsIndependent(t *testing.T) {
	p := twoPredParams()
	p.G = 1
	if got := p.JointSel([]int{0, 1}); got != 0.16 {
		t.Errorf("1-correlated joint sel = %v, want min = 0.16", got)
	}
	p.G = 2
	if got := p.JointSel([]int{0, 1}); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("independent joint sel = %v, want 0.08", got)
	}
	// G larger than |J| degrades to the product of all.
	p.G = 5
	if got := p.JointSel([]int{0}); got != 0.16 {
		t.Errorf("g>|J| joint sel = %v", got)
	}
}

func TestJointFanout(t *testing.T) {
	p := twoPredParams()
	p.G = 1
	if got := p.JointFanout([]int{0, 1}, false); got != 2 {
		t.Errorf("1-correlated joint fanout = %v, want min = 2", got)
	}
	p.G = 2
	want := 2.0 * 5.0 / 10000.0
	if got := p.JointFanout([]int{0, 1}, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("independent joint fanout = %v, want %v", got, want)
	}
	// Selection participates as a pseudo-predicate.
	p.G = 1
	p.HasSel = true
	p.SelFanout = 1
	p.SelPostings = 3
	p.SelTerms = 2
	if got := p.JointFanout([]int{0, 1}, true); got != 1 {
		t.Errorf("joint fanout with selective selection = %v, want 1", got)
	}
	if got := p.JointFanout(nil, true); got != 1 {
		t.Errorf("selection-only fanout = %v, want 1", got)
	}
	if got := p.JointFanout(nil, false); got != 0 {
		t.Errorf("empty fanout = %v, want 0", got)
	}
}

func TestVUI(t *testing.T) {
	p := twoPredParams()
	p.G = 1
	if got := p.V(10, []int{0}); got != 20 {
		t.Errorf("V_{10,{0}} = %v, want 20", got)
	}
	// U is below V and approaches D.
	u := p.U(10, []int{0})
	if u <= 0 || u > 20 {
		t.Errorf("U_{10,{0}} = %v out of (0,20]", u)
	}
	if got := p.U(1e12, []int{0}); math.Abs(got-float64(p.D)) > 1 {
		t.Errorf("U for huge n = %v, want ≈ D", got)
	}
	// Fanout ≥ D degenerates to D.
	p2 := twoPredParams()
	p2.Preds[0].Fanout = float64(p2.D + 5)
	if got := p2.U(3, []int{0}); got != float64(p2.D) {
		t.Errorf("U with fanout > D = %v", got)
	}
	// I charges each column's list plus the selection lists per search.
	if got := p.I(10, []int{0, 1}); got != 70 {
		t.Errorf("I_{10,K} = %v, want 10*(2+5) = 70", got)
	}
	p.HasSel = true
	p.SelPostings = 3
	p.SelTerms = 1
	if got := p.I(10, []int{0}); got != 50 {
		t.Errorf("I with selection = %v, want 10*(2+3) = 50", got)
	}
}

func TestCostTSHandComputed(t *testing.T) {
	p := twoPredParams()
	// NK = min(25*80, 100) = 100; F_{1,K} = 2; I = 100*7.
	want := p.Costs.CI*100 + p.Costs.CP*700 + p.Costs.CL*200
	if got := p.CostTS(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CostTS = %v, want %v", got, want)
	}
	// Without long forms, transmission switches to c_s.
	p.LongForm = false
	want = p.Costs.CI*100 + p.Costs.CP*700 + p.Costs.CS*200
	if got := p.CostTS(); math.Abs(got-want) > 1e-9 {
		t.Errorf("short-form CostTS = %v, want %v", got, want)
	}
}

func TestCostProbeAndPTSHandComputed(t *testing.T) {
	p := twoPredParams()
	J := []int{0}
	// C_P = ci*25 + cp*25*2 + cs*25*2
	wantP := p.Costs.CI*25 + p.Costs.CP*50 + p.Costs.CS*50
	if got := p.CostProbe(J); math.Abs(got-wantP) > 1e-9 {
		t.Errorf("CostProbe = %v, want %v", got, wantP)
	}
	// R = NK * s0 = 100*0.16 = 16.
	wantPTS := wantP + p.Costs.CI*16 + p.Costs.CP*16*7 + p.Costs.CL*16*2
	if got := p.CostPTS(J); math.Abs(got-wantPTS) > 1e-9 {
		t.Errorf("CostPTS = %v, want %v", got, wantPTS)
	}
}

func TestApplicability(t *testing.T) {
	p := twoPredParams()
	if !p.Applicable(MethodTS) || !p.Applicable(MethodPTS) || !p.Applicable(MethodPRTP) {
		t.Error("TS/P+TS/P+RTP should be applicable with 2 predicates")
	}
	if p.Applicable(MethodRTP) {
		t.Error("RTP requires a text selection")
	}
	if !p.Applicable(MethodSJRTP) {
		t.Error("SJ+RTP should fit within M=70")
	}
	p.HasSel = true
	p.SelTerms = 69
	p.SelFanout = 10
	p.SelPostings = 10
	if !p.Applicable(MethodRTP) {
		t.Error("RTP should be applicable with a selection")
	}
	if p.Applicable(MethodSJRTP) {
		t.Error("SJ+RTP applicable although the selection exhausts M")
	}
	single := &Params{
		Costs: texservice.DefaultCosts(), D: 100, M: 70, G: 1, N: 10,
		Preds: []Pred{{Sel: 0.5, Fanout: 1, Distinct: 5, Terms: 1}},
	}
	if single.Applicable(MethodPTS) || single.Applicable(MethodPRTP) {
		t.Error("probing requires at least two join predicates")
	}
	if single.Applicable(Method(99)) {
		t.Error("unknown method applicable")
	}
	if single.CostRTP() != math.Inf(1) {
		t.Error("CostRTP without selection must be +Inf")
	}
	if single.Cost(Method(99)) != math.Inf(1) {
		t.Error("unknown method cost must be +Inf")
	}
}

func TestSJBatches(t *testing.T) {
	p := twoPredParams() // 2 terms/tuple, M=70, no selection → 35 tuples/batch
	// NK = 100 → ceil(100/35) = 3.
	if got := p.SJBatches(); got != 3 {
		t.Errorf("SJBatches = %v, want 3", got)
	}
	p.HasSel = true
	p.SelTerms = 68
	p.SelFanout = 1
	p.SelPostings = 1
	// Room = 2 → 1 tuple per batch → 100 batches.
	if got := p.SJBatches(); got != 100 {
		t.Errorf("SJBatches with big selection = %v, want 100", got)
	}
	p.SelTerms = 69
	if got := p.SJBatches(); !math.IsInf(got, 1) {
		t.Errorf("SJBatches with no room = %v, want +Inf", got)
	}
}

// TestExample51 reproduces Example 5.1: with invocation cost dominating,
// the optimal single probe column is not necessarily the most selective
// one — N_i matters too.
func TestExample51(t *testing.T) {
	p := &Params{
		Costs: invocationOnly(),
		D:     100000, M: 70, G: 1, N: 1000,
		Preds: []Pred{
			{Sel: 0.1, Fanout: 1, Distinct: 500, Terms: 1}, // more selective, many distinct
			{Sel: 0.2, Fanout: 1, Distinct: 10, Terms: 1},  // less selective, few distinct
		},
		LongForm: true,
	}
	c0 := p.CostPTS([]int{0}) // 500 + 0.1*1000 = 600 invocations
	c1 := p.CostPTS([]int{1}) // 10 + 0.2*1000 = 210 invocations
	if c1 >= c0 {
		t.Fatalf("higher-selectivity column should win: c0=%v c1=%v", c0, c1)
	}
	// And the inequality matches the paper's analytic condition
	// s_i − s_j < (N_j − N_i)/N.
	si, sj := 0.2, 0.1
	ni, nj := 10.0, 500.0
	if (si-sj < (nj-ni)/1000) != (c1 < c0) {
		t.Fatal("analytic condition disagrees with cost formulas")
	}
}

// TestExample52 reproduces Example 5.2: under an independent (k-correlated)
// model with invocation cost only, a two-column probe dominates every
// single-column probe.
func TestExample52(t *testing.T) {
	p := &Params{
		Costs: invocationOnly(),
		D:     1000000, M: 70, G: 3, N: 100000,
		Preds: []Pred{
			{Sel: 0.005, Fanout: 1, Distinct: 1000, Terms: 1},
			{Sel: 0.01, Fanout: 1, Distinct: 10, Terms: 1},
			{Sel: 0.01, Fanout: 1, Distinct: 10, Terms: 1},
		},
		LongForm: true,
	}
	bestSingle := math.Inf(1)
	for i := 0; i < 3; i++ {
		if c := p.CostPTS([]int{i}); c < bestSingle {
			bestSingle = c
		}
	}
	J, best := p.ExhaustiveOptimalProbe(p.CostPTS)
	if len(J) != 2 {
		t.Fatalf("optimal probe = %v (cost %v), want a 2-column probe", J, best)
	}
	if best >= bestSingle {
		t.Fatalf("2-column probe (%v) does not beat best single column (%v)", best, bestSingle)
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodTS: "TS", MethodRTP: "RTP", MethodSJRTP: "SJ+RTP",
		MethodPTS: "P+TS", MethodPRTP: "P+RTP",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Error("unknown method renders empty")
	}
}

func TestBestAndRanking(t *testing.T) {
	p := twoPredParams()
	p.HasSel = true
	p.SelFanout = 2
	p.SelPostings = 4
	p.SelTerms = 2
	m, c := p.Best()
	if math.IsInf(c, 1) {
		t.Fatal("no applicable method found")
	}
	rank := p.Ranking()
	if len(rank) != 5 {
		t.Fatalf("ranking covers %d methods, want 5", len(rank))
	}
	if rank[0] != m {
		t.Fatalf("ranking head %v != best %v", rank[0], m)
	}
	for i := 1; i < len(rank); i++ {
		if p.Cost(rank[i-1]) > p.Cost(rank[i]) {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	// With a highly selective selection, RTP should rank first (the Q1
	// situation).
	p.SelFanout = 1
	p.SelPostings = 1
	if got := p.Ranking()[0]; got != MethodRTP {
		t.Fatalf("with selective selection best = %v, want RTP", got)
	}
}

// TestFigure2Boundary checks §7.2's analytic boundary: when invocation and
// (equal) long-form transmission dominate, P+TS beats TS exactly when
// s_1 < 1 − N_1/N.
func TestFigure2Boundary(t *testing.T) {
	for _, s1 := range []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95} {
		for _, ratio := range []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			n := 1000
			n1 := int(ratio * float64(n))
			if n1 < 1 {
				n1 = 1
			}
			p := &Params{
				Costs: invocationOnly(),
				D:     100000, M: 70, G: 1, N: n,
				Preds: []Pred{
					{Sel: s1, Fanout: 1, Distinct: n1, Terms: 1},
					{Sel: 1.0, Fanout: 1, Distinct: n, Terms: 1},
				},
				LongForm: true,
			}
			cTS := p.CostTS()
			cPTS := p.CostPTS([]int{0})
			wantProbe := float64(n1)+s1*float64(n) < float64(n)
			if (cPTS < cTS) != wantProbe {
				t.Errorf("s1=%v N1/N=%v: P+TS %v TS %v, analytic says probe=%v",
					s1, ratio, cPTS, cTS, wantProbe)
			}
		}
	}
}
