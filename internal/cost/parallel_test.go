package cost

import (
	"math"
	"testing"

	"textjoin/internal/texservice"
)

func TestScatterSearchCost(t *testing.T) {
	c := texservice.DefaultCosts()
	const postings, docs = 10000, 400

	single, singleCrit := ScatterSearchCost(c, 1, postings, docs, texservice.FormShort)
	want := c.CI + c.CP*postings + c.CS*docs
	if math.Abs(single-want) > 1e-9 || math.Abs(singleCrit-want) > 1e-9 {
		t.Fatalf("n=1: total %v crit %v, want both %v", single, singleCrit, want)
	}

	for _, n := range []int{2, 4, 8} {
		total, crit := ScatterSearchCost(c, n, postings, docs, texservice.FormShort)
		// Total work grows by exactly the extra invocations.
		if diff := total - single; math.Abs(diff-float64(n-1)*c.CI) > 1e-9 {
			t.Fatalf("n=%d: total grew by %v, want %v", n, diff, float64(n-1)*c.CI)
		}
		// The critical path keeps one c_i and divides the data terms.
		wantCrit := c.CI + c.CP*math.Ceil(postings/float64(n)) + c.CS*math.Ceil(docs/float64(n))
		if math.Abs(crit-wantCrit) > 1e-9 {
			t.Fatalf("n=%d: crit %v, want %v", n, crit, wantCrit)
		}
		if crit >= single {
			t.Fatalf("n=%d: crit %v not below sequential %v", n, crit, single)
		}
	}

	// Long form switches the transmission coefficient.
	totalLong, _ := ScatterSearchCost(c, 2, 0, 10, texservice.FormLong)
	if math.Abs(totalLong-(2*c.CI+10*c.CL)) > 1e-9 {
		t.Fatalf("long form total %v", totalLong)
	}

	// Degenerate n is clamped.
	tot0, _ := ScatterSearchCost(c, 0, postings, docs, texservice.FormShort)
	if math.Abs(tot0-single) > 1e-9 {
		t.Fatalf("n=0 total %v, want %v", tot0, single)
	}
}

func TestScatterSpeedup(t *testing.T) {
	c := texservice.DefaultCosts()
	// Invocation-dominated search: parallelism buys almost nothing.
	low := ScatterSpeedup(c, 4, 10, 1, texservice.FormShort)
	if low < 1 || low > 1.1 {
		t.Fatalf("invocation-dominated speedup %v", low)
	}
	// Transmission-dominated long-form search: speedup approaches n.
	high := ScatterSpeedup(c, 4, 100, 10000, texservice.FormLong)
	if high < 3.5 || high > 4 {
		t.Fatalf("data-dominated speedup %v, want ≈4", high)
	}
	// Speedup is monotone in n for a data-heavy search.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		s := ScatterSpeedup(c, n, 100, 10000, texservice.FormLong)
		if s < prev {
			t.Fatalf("speedup fell from %v to %v at n=%d", prev, s, n)
		}
		prev = s
	}
}
