package sqlparse

import (
	"strings"
	"testing"

	"textjoin/internal/relation"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func catalog(t *testing.T) *Catalog {
	t.Helper()
	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "area", Kind: value.KindString},
		relation.Column{Name: "year", Kind: value.KindInt},
		relation.Column{Name: "advisor", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	faculty := relation.NewTable("faculty", relation.MustSchema(
		relation.Column{Name: "fname", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	return &Catalog{
		Tables: map[string]*relation.Table{"student": student, "faculty": faculty},
		Text: map[string]*TextSourceInfo{
			"mercury": {Name: "mercury", Fields: []string{"title", "author", "abstract", "year"}},
		},
	}
}

func analyze(t *testing.T, src string) (*Analyzed, error) {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Analyze(q, catalog(t))
}

func TestAnalyzeQ1(t *testing.T) {
	a, err := analyze(t, `select * from student, mercury
		where student.area = 'AI' and student.year > 3
		and 'belief update' in mercury.title
		and student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables) != 1 || a.Tables[0] != "student" || a.SingleSource() != "mercury" {
		t.Fatalf("tables = %v, text = %q", a.Tables, a.SingleSource())
	}
	sel := a.Selections["student"]
	and, ok := sel.(relation.And)
	if !ok || len(and) != 2 {
		t.Fatalf("student selections = %v", sel)
	}
	part := a.Part("mercury")
	if part == nil || part.Sel == nil {
		t.Fatal("text selection missing")
	}
	if ph, ok := part.Sel.(textidx.Phrase); !ok || ph.Field != "title" {
		t.Fatalf("text selection = %#v", part.Sel)
	}
	if len(a.Foreign) != 1 || a.Foreign[0].Column != "student.name" || a.Foreign[0].Field != "author" {
		t.Fatalf("foreign = %v", a.Foreign)
	}
	// Star output: student columns + docid + all text fields, long form.
	if !a.Part("mercury").LongForm {
		t.Error("star select should need long forms")
	}
	if len(a.OutputCols) != 5+1+4 {
		t.Errorf("output cols = %v", a.OutputCols)
	}
}

func TestAnalyzeQ5MultiJoin(t *testing.T) {
	a, err := analyze(t, `select student.name, mercury.docid
		from student, faculty, mercury
		where student.name in mercury.author
		and faculty.fname in mercury.author
		and faculty.dept != student.dept
		and '1993' in mercury.year`)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tables) != 2 {
		t.Fatalf("tables = %v", a.Tables)
	}
	if len(a.Edges) != 1 {
		t.Fatalf("edges = %v", a.Edges)
	}
	e := a.Edges[0]
	if e.A != "faculty" || e.B != "student" || len(e.Equi) != 0 || len(e.Residual) != 1 {
		t.Fatalf("edge = %+v", e)
	}
	if len(a.Foreign) != 2 {
		t.Fatalf("foreign = %v", a.Foreign)
	}
	ft := a.ForeignTables()
	if len(ft) != 2 || ft[0] != "faculty" || ft[1] != "student" {
		t.Fatalf("foreign tables = %v", ft)
	}
	if len(a.ForeignPredsOf("student")) != 1 {
		t.Fatalf("foreign preds of student = %v", a.ForeignPredsOf("student"))
	}
	// docid-only output: no long forms.
	if p := a.Part("mercury"); p.LongForm || len(p.DocFields) != 0 {
		t.Errorf("docid-only query marked long form")
	}
	if a.OutputCols[1] != "mercury.docid" {
		t.Errorf("output cols = %v", a.OutputCols)
	}
	if !strings.Contains(a.String(), "foreign") {
		t.Errorf("summary = %q", a.String())
	}
}

func TestAnalyzeEquiJoin(t *testing.T) {
	a, err := analyze(t, `select * from student, faculty
		where student.advisor = faculty.fname and student.year >= faculty.year`)
	if err == nil {
		// faculty.year doesn't exist → must error; guard against silence.
		t.Fatalf("nonexistent column accepted: %v", a)
	}
	a, err = analyze(t, `select * from student, faculty
		where student.advisor = faculty.fname`)
	if err != nil {
		t.Fatal(err)
	}
	e := a.Edges[0]
	if len(e.Equi) != 1 {
		t.Fatalf("edge = %+v", e)
	}
	// Canonical direction: A="faculty" < B="student".
	if e.Equi[0].Left != "faculty.fname" || e.Equi[0].Right != "student.advisor" {
		t.Fatalf("equi cond = %+v", e.Equi[0])
	}
}

func TestAnalyzeFlipsInequalities(t *testing.T) {
	a, err := analyze(t, `select * from student, faculty
		where student.year > faculty.dept`) // silly but type-free comparison
	if err != nil {
		t.Fatal(err)
	}
	res := a.Edges[0].Residual[0].(relation.ColCol)
	// faculty < student, so the conjunct flips to faculty.dept < student.year.
	if res.Left != "faculty.dept" || res.Op != relation.OpLt || res.Right != "student.year" {
		t.Fatalf("flipped residual = %+v", res)
	}
}

func TestAnalyzeUnqualifiedColumns(t *testing.T) {
	a, err := analyze(t, `select name from student, mercury where name in author`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Foreign[0].Column != "student.name" || a.Foreign[0].Field != "author" {
		t.Fatalf("foreign = %v", a.Foreign)
	}
	if a.OutputCols[0] != "student.name" {
		t.Fatalf("output = %v", a.OutputCols)
	}
	// "dept" is ambiguous between student and faculty.
	if _, err := analyze(t, "select dept from student, faculty"); err == nil {
		t.Fatal("ambiguous column accepted")
	}
}

func TestAnalyzeDocid(t *testing.T) {
	a, err := analyze(t, `select docid from student, mercury where student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if a.OutputCols[0] != "mercury.docid" || a.Part("mercury").LongForm {
		t.Fatalf("docid output = %v, longform=%v", a.OutputCols, a.Part("mercury").LongForm)
	}
	// Selecting a text field forces long form.
	a, err = analyze(t, `select docid, mercury.title from student, mercury where student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if p := a.Part("mercury"); !p.LongForm || len(p.DocFields) != 1 || p.DocFields[0] != "title" {
		t.Fatalf("long form detection: %v %v", p.LongForm, p.DocFields)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	bad := []string{
		"select * from nosuch",
		"select * from student, student",
		"select * from mercury",                                      // no relational table
		"select * from student where 'x' in mercury.title",           // text source not in from
		"select * from student, mercury where 'x' in mercury.nosuch", // unknown field
		"select * from student, mercury where 'x' in student.name",   // right side not text
		"select * from student, mercury where mercury.title = 'x'",   // comparison on text
		"select * from student, mercury where student.name = mercury.title",
		"select * from student, mercury where 'x' in mercury.docid", // docid not searchable
		"select nosuch from student",
		"select * from student where nosuch = 3",
		"select * from student, mercury where '??' in mercury.title", // unsearchable term
	}
	for _, src := range bad {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Analyze(q, catalog(t)); err == nil {
			t.Errorf("Analyze(%q) succeeded", src)
		}
	}
}

func TestAnalyzePureRelational(t *testing.T) {
	a, err := analyze(t, `select student.name from student, faculty
		where student.advisor = faculty.fname and student.year > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasText() || len(a.Foreign) != 0 {
		t.Fatalf("pure relational query misclassified: %+v", a)
	}
	if len(a.Edges) != 1 || len(a.Tables) != 2 {
		t.Fatalf("edges/tables: %v %v", a.Edges, a.Tables)
	}
}

func TestAnalyzeMultipleTextSelections(t *testing.T) {
	a, err := analyze(t, `select docid from student, mercury
		where 'text' in mercury.title and '1994' in mercury.year
		and student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := a.Part("mercury").Sel.(textidx.And)
	if !ok || len(and) != 2 {
		t.Fatalf("text selection = %#v", a.Part("mercury").Sel)
	}
}

func TestAnalyzeSelectionsDefaultTrue(t *testing.T) {
	a, err := analyze(t, `select docid from student, mercury where student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Selections["student"].(relation.True); !ok {
		t.Fatalf("selection default = %#v", a.Selections["student"])
	}
}
