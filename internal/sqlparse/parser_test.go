package sqlparse

import (
	"testing"

	"textjoin/internal/relation"
	"textjoin/internal/value"
)

func TestParseQ1(t *testing.T) {
	q, err := Parse(`select * from student, mercury
		where student.area = 'AI' and student.year > 3
		and 'belief update' in mercury.title
		and student.name in mercury.author`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Error("star not recognised")
	}
	if len(q.From) != 2 || q.From[0] != "student" || q.From[1] != "mercury" {
		t.Errorf("from = %v", q.From)
	}
	if len(q.Conjuncts) != 4 {
		t.Fatalf("conjuncts = %d", len(q.Conjuncts))
	}
	c0, ok := q.Conjuncts[0].(Comparison)
	if !ok || c0.Left.Qualified() != "student.area" || c0.Op != relation.OpEq ||
		c0.RightLit.AsString() != "AI" {
		t.Errorf("conjunct 0 = %#v", q.Conjuncts[0])
	}
	c1 := q.Conjuncts[1].(Comparison)
	if c1.Op != relation.OpGt || c1.RightLit.AsInt() != 3 {
		t.Errorf("conjunct 1 = %#v", c1)
	}
	c2, ok := q.Conjuncts[2].(TextPred)
	if !ok || !c2.IsConst || c2.ConstTerm != "belief update" || c2.Field.Qualified() != "mercury.title" {
		t.Errorf("conjunct 2 = %#v", q.Conjuncts[2])
	}
	c3, ok := q.Conjuncts[3].(TextPred)
	if !ok || c3.IsConst || c3.Col.Qualified() != "student.name" {
		t.Errorf("conjunct 3 = %#v", q.Conjuncts[3])
	}
}

func TestParseSelectList(t *testing.T) {
	q, err := Parse("select docid, student.name from student, mercury")
	if err != nil {
		t.Fatal(err)
	}
	if q.Star || len(q.Select) != 2 {
		t.Fatalf("select = %v", q.Select)
	}
	if q.Select[0].Table != "" || q.Select[0].Column != "docid" {
		t.Errorf("select[0] = %v", q.Select[0])
	}
	if q.Select[1].Qualified() != "student.name" {
		t.Errorf("select[1] = %v", q.Select[1])
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]relation.CmpOp{
		"=": relation.OpEq, "!=": relation.OpNe, "<>": relation.OpNe,
		"<": relation.OpLt, "<=": relation.OpLe, ">": relation.OpGt, ">=": relation.OpGe,
	}
	for text, op := range ops {
		q, err := Parse("select * from r where r.a " + text + " 5")
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		c := q.Conjuncts[0].(Comparison)
		if c.Op != op {
			t.Errorf("%s parsed as %v", text, c.Op)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse("select * from r where r.a > 2.5 and r.b = -3 and r.c = 'x y'")
	if err != nil {
		t.Fatal(err)
	}
	if v := q.Conjuncts[0].(Comparison).RightLit; v.Kind() != value.KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("float literal = %v", v)
	}
	if v := q.Conjuncts[1].(Comparison).RightLit; v.AsInt() != -3 {
		t.Errorf("negative int literal = %v", v)
	}
	if v := q.Conjuncts[2].(Comparison).RightLit; v.AsString() != "x y" {
		t.Errorf("string literal = %v", v)
	}
}

func TestParseColumnComparison(t *testing.T) {
	q, err := Parse("select * from s, f where f.dept != s.dept")
	if err != nil {
		t.Fatal(err)
	}
	c := q.Conjuncts[0].(Comparison)
	if !c.RightIsCol || c.RightCol.Qualified() != "s.dept" {
		t.Errorf("column comparison = %#v", c)
	}
}

func TestParseNoWhere(t *testing.T) {
	q, err := Parse("select * from r")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conjuncts) != 0 {
		t.Errorf("conjuncts = %v", q.Conjuncts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * r",
		"select * from",
		"select * from r where",
		"select * from r where r.a",
		"select * from r where r.a =",
		"select * from r where r.a = 'unterminated",
		"select * from r where 'x' = r.a",
		"select * from r where 'x' in",
		"select * from r where r.a ! 3",
		"select * from r extra",
		"select * from r where r.a = 3 and",
		"select *, from r",
		"select * from r where r.a = 1.2.3",
		"select * from r where r.. = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"select * from student, mercury where student.area = 'AI' and 'belief update' in mercury.title",
		"select docid from student, mercury where student.name in mercury.author",
		"select student.name, mercury.docid from student, faculty, mercury where faculty.dept != student.dept",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed:\n%s\n%s", q1, q2)
		}
	}
}

func TestCaseInsensitivity(t *testing.T) {
	q, err := Parse("SELECT * FROM Student WHERE Student.Area = 'AI' AND 'x' IN Mercury.Title")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0] != "student" {
		t.Errorf("table not lower-cased: %v", q.From)
	}
	c := q.Conjuncts[0].(Comparison)
	if c.Left.Qualified() != "student.area" {
		t.Errorf("column not lower-cased: %v", c.Left)
	}
	// String literal case preserved.
	if c.RightLit.AsString() != "AI" {
		t.Errorf("literal case changed: %v", c.RightLit)
	}
}
