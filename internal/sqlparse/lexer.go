// Package sqlparse implements the paper's SQL-ish surface syntax for
// conjunctive queries over relational tables and external text sources:
//
//	select student.name, mercury.docid
//	from student, faculty, mercury
//	where student.area = 'AI'
//	  and student.year > 3
//	  and faculty.dept != student.dept
//	  and 'belief update' in mercury.title
//	  and student.name in mercury.author
//
// The package provides a lexer, a recursive-descent parser producing an
// AST, and a semantic analyzer that resolves names against a catalog and
// classifies each conjunct as a relational selection, a relational join, a
// text selection, or a foreign join predicate — the classification the
// optimizer of §6 consumes.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tComma
	tDot
	tStar
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tKeyword // select, from, where, and, in
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "in": true,
}

// lex tokenizes a query string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == ',':
			toks = append(toks, token{tComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tDot, ".", i})
			i++
		case c == '*':
			toks = append(toks, token{tStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tNe, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlparse: stray '!' at %d", i)
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tLe, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tNe, "<>", i})
				i += 2
			} else {
				toks = append(toks, token{tLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tGt, ">", i})
				i++
			}
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", i)
			}
			toks = append(toks, token{tString, src[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], i})
			i = j
		case isIdentByte(c):
			j := i
			for j < len(src) && (isIdentByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToLower(word)] {
				toks = append(toks, token{tKeyword, strings.ToLower(word), i})
			} else {
				toks = append(toks, token{tIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
