package sqlparse

import (
	"strings"

	"textjoin/internal/relation"
	"textjoin/internal/value"
)

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table  string // "" when unqualified
	Column string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Qualified returns the canonical "table.column" form (Table must be set).
func (c ColRef) Qualified() string { return c.Table + "." + c.Column }

// Comparison is "left op right" where right is a column or a literal.
type Comparison struct {
	Left       ColRef
	Op         relation.CmpOp
	RightIsCol bool
	RightCol   ColRef
	RightLit   value.Value
}

// String renders the conjunct.
func (c Comparison) String() string {
	right := c.RightLit.String()
	if c.RightIsCol {
		right = c.RightCol.String()
	}
	return c.Left.String() + " " + c.Op.String() + " " + right
}

// TextPred is "<term> in <field>" — a text selection when the left side is
// a string constant, a foreign join predicate when it is a column.
type TextPred struct {
	ConstTerm string // set when IsConst
	IsConst   bool
	Col       ColRef // set when !IsConst
	Field     ColRef // the text source field, e.g. mercury.title
}

// String renders the conjunct.
func (p TextPred) String() string {
	if p.IsConst {
		return "'" + p.ConstTerm + "' in " + p.Field.String()
	}
	return p.Col.String() + " in " + p.Field.String()
}

// Conjunct is one AND-ed condition of the where clause.
type Conjunct interface{ String() string }

// Query is the parsed form of a select-from-where query.
type Query struct {
	Star      bool
	Select    []ColRef
	From      []string
	Conjuncts []Conjunct
}

// String renders the query in canonical form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.Star {
		b.WriteString("*")
	} else {
		for i, c := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" from ")
	b.WriteString(strings.Join(q.From, ", "))
	if len(q.Conjuncts) > 0 {
		b.WriteString(" where ")
		for i, c := range q.Conjuncts {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}
