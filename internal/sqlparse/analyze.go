package sqlparse

import (
	"fmt"
	"sort"
	"strings"

	"textjoin/internal/relation"
	"textjoin/internal/textidx"
)

// TextSourceInfo describes one external text source registered in the
// catalog: its name (used as a table name in queries) and its text fields.
type TextSourceInfo struct {
	Name   string
	Fields []string
}

// HasField reports whether the source has the named text field.
func (t *TextSourceInfo) HasField(f string) bool {
	for _, g := range t.Fields {
		if g == f {
			return true
		}
	}
	return false
}

// Catalog is the name environment queries are analyzed against.
type Catalog struct {
	Tables map[string]*relation.Table
	Text   map[string]*TextSourceInfo
}

// DocIDField is the pseudo-field exposing a document's identifier.
const DocIDField = "docid"

// ForeignPred is a classified foreign join predicate: the (qualified)
// relation column must occur in the text source field.
type ForeignPred struct {
	Source string // text source name
	Table  string // relational table
	Column string // qualified column, e.g. "student.name"
	Field  string // text field, e.g. "author"
}

// String renders the predicate.
func (p ForeignPred) String() string {
	if p.Source == "" {
		return p.Column + " in " + p.Field
	}
	return p.Column + " in " + p.Source + "." + p.Field
}

// JoinEdge aggregates the join conjuncts between two relational tables.
type JoinEdge struct {
	A, B     string
	Equi     []relation.EquiJoinCond // Left references A, Right references B
	Residual relation.And            // non-equality conjuncts over qualified names
}

// TextPart is the per-source portion of a classified query: its text
// selection and the document output it must deliver.
type TextPart struct {
	// Source is the text source's name.
	Source string
	// Sel is the conjunction of the source's text selections (nil when
	// none).
	Sel textidx.Expr
	// DocFields are the source's fields (beyond docid) the output needs.
	DocFields []string
	// LongForm reports whether the output needs this source's full
	// documents.
	LongForm bool
}

// Analyzed is the classified form of a query (§2.3's problem input): every
// conjunct is a relational selection, a relational join, a text selection,
// or a foreign join predicate. A query may join with several external
// text sources (§8's generalization); each gets a TextPart and its own
// foreign predicates.
type Analyzed struct {
	Src *Query
	// Tables are the relational tables in from-clause order.
	Tables []string
	// Text are the text sources in from-clause order (empty for pure
	// relational queries).
	Text []TextPart
	// Selections maps each table to the conjunction of its selection
	// predicates over qualified column names (True when none).
	Selections map[string]relation.Predicate
	// Edges are the relational join edges.
	Edges []JoinEdge
	// Foreign are the foreign join predicates of every source.
	Foreign []ForeignPred
	// OutputCols are the qualified output columns in select-list order.
	OutputCols []string
}

// HasText reports whether the query involves any text source.
func (a *Analyzed) HasText() bool { return len(a.Text) > 0 }

// Part returns the TextPart of the named source, or nil.
func (a *Analyzed) Part(source string) *TextPart {
	for i := range a.Text {
		if a.Text[i].Source == source {
			return &a.Text[i]
		}
	}
	return nil
}

// ForeignOf returns the foreign predicates of one source.
func (a *Analyzed) ForeignOf(source string) []ForeignPred {
	var out []ForeignPred
	for _, f := range a.Foreign {
		if f.Source == source {
			out = append(out, f)
		}
	}
	return out
}

// SingleSource returns the sole text source's name, or "" when the query
// has none or several.
func (a *Analyzed) SingleSource() string {
	if len(a.Text) == 1 {
		return a.Text[0].Source
	}
	return ""
}

// Analyze resolves and classifies a parsed query against the catalog.
func Analyze(q *Query, cat *Catalog) (*Analyzed, error) {
	a := &Analyzed{Src: q, Selections: map[string]relation.Predicate{}}

	// Resolve the from list.
	seen := map[string]bool{}
	for _, name := range q.From {
		if seen[name] {
			return nil, fmt.Errorf("sqlparse: table %q listed twice", name)
		}
		seen[name] = true
		if _, ok := cat.Tables[name]; ok {
			a.Tables = append(a.Tables, name)
			continue
		}
		if _, ok := cat.Text[name]; ok {
			a.Text = append(a.Text, TextPart{Source: name})
			continue
		}
		return nil, fmt.Errorf("sqlparse: unknown table %q", name)
	}
	if len(a.Tables) == 0 {
		return nil, fmt.Errorf("sqlparse: query needs at least one relational table")
	}

	r := &resolver{cat: cat, a: a}

	// Classify conjuncts.
	selParts := map[string]relation.And{}
	edges := map[string]*JoinEdge{}
	textSels := map[string]textidx.And{}
	for _, c := range q.Conjuncts {
		switch c := c.(type) {
		case Comparison:
			if err := r.classifyComparison(c, selParts, edges); err != nil {
				return nil, err
			}
		case TextPred:
			if err := r.classifyTextPred(c, textSels); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sqlparse: unknown conjunct %T", c)
		}
	}
	for _, t := range a.Tables {
		if parts := selParts[t]; len(parts) > 0 {
			a.Selections[t] = parts
		} else {
			a.Selections[t] = relation.True{}
		}
	}
	var edgeKeys []string
	for k := range edges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Strings(edgeKeys)
	for _, k := range edgeKeys {
		a.Edges = append(a.Edges, *edges[k])
	}
	for i := range a.Text {
		sel := textSels[a.Text[i].Source]
		if len(sel) == 1 {
			a.Text[i].Sel = sel[0]
		} else if len(sel) > 1 {
			a.Text[i].Sel = sel
		}
	}

	// Every listed source needs at least one foreign predicate (cross
	// joins with text are not supported).
	for i := range a.Text {
		if len(a.ForeignOf(a.Text[i].Source)) == 0 {
			return nil, fmt.Errorf("sqlparse: text source %q needs at least one foreign join predicate (cross joins with text are not supported)", a.Text[i].Source)
		}
	}

	// Resolve the select list.
	if err := r.resolveSelect(q); err != nil {
		return nil, err
	}
	return a, nil
}

type resolver struct {
	cat *Catalog
	a   *Analyzed
}

// tableOf resolves a column reference to a relational table name,
// validating the column exists.
func (r *resolver) tableOf(c ColRef) (string, error) {
	if c.Table != "" {
		tbl, ok := r.cat.Tables[c.Table]
		if !ok || !r.inFrom(c.Table) {
			return "", fmt.Errorf("sqlparse: unknown relational table %q", c.Table)
		}
		if tbl.Schema.ColumnIndex(c.Column) < 0 {
			return "", fmt.Errorf("sqlparse: table %q has no column %q", c.Table, c.Column)
		}
		return c.Table, nil
	}
	var found string
	for _, name := range r.a.Tables {
		if r.cat.Tables[name].Schema.ColumnIndex(c.Column) >= 0 {
			if found != "" {
				return "", fmt.Errorf("sqlparse: column %q is ambiguous (%q, %q)", c.Column, found, name)
			}
			found = name
		}
	}
	if found == "" {
		return "", fmt.Errorf("sqlparse: unknown column %q", c.Column)
	}
	return found, nil
}

func (r *resolver) inFrom(table string) bool {
	for _, t := range r.a.Tables {
		if t == table {
			return true
		}
	}
	return false
}

// textRef resolves a reference to one of the query's text sources,
// returning the source name. ok is false for relational references.
func (r *resolver) textRef(c ColRef) (source string, ok bool, err error) {
	if len(r.a.Text) == 0 {
		return "", false, nil
	}
	if c.Table != "" {
		part := r.a.Part(c.Table)
		if part == nil {
			return "", false, nil
		}
		info := r.cat.Text[c.Table]
		if c.Column != DocIDField && !info.HasField(c.Column) {
			return "", false, fmt.Errorf("sqlparse: text source %q has no field %q", c.Table, c.Column)
		}
		return c.Table, true, nil
	}
	// Unqualified: relational columns win.
	for _, name := range r.a.Tables {
		if r.cat.Tables[name].Schema.ColumnIndex(c.Column) >= 0 {
			return "", false, nil
		}
	}
	var found string
	for _, part := range r.a.Text {
		info := r.cat.Text[part.Source]
		if c.Column == DocIDField || info.HasField(c.Column) {
			if found != "" {
				return "", false, fmt.Errorf("sqlparse: field %q is ambiguous (%q, %q)", c.Column, found, part.Source)
			}
			found = part.Source
		}
	}
	if found == "" {
		return "", false, nil
	}
	return found, true, nil
}

func (r *resolver) classifyComparison(c Comparison, selParts map[string]relation.And, edges map[string]*JoinEdge) error {
	if _, isText, err := r.textRef(c.Left); err != nil {
		return err
	} else if isText {
		return fmt.Errorf("sqlparse: comparisons over text fields are not supported; use 'term' in %s", c.Left)
	}
	leftTable, err := r.tableOf(c.Left)
	if err != nil {
		return err
	}
	leftQ := leftTable + "." + c.Left.Column

	if !c.RightIsCol {
		selParts[leftTable] = append(selParts[leftTable], relation.ColConst{
			Col: leftQ, Op: c.Op, Const: c.RightLit,
		})
		return nil
	}
	if _, isText, err := r.textRef(c.RightCol); err != nil {
		return err
	} else if isText {
		return fmt.Errorf("sqlparse: comparisons over text fields are not supported; use 'term' in %s", c.RightCol)
	}
	rightTable, err := r.tableOf(c.RightCol)
	if err != nil {
		return err
	}
	rightQ := rightTable + "." + c.RightCol.Column
	if leftTable == rightTable {
		selParts[leftTable] = append(selParts[leftTable], relation.ColCol{
			Left: leftQ, Op: c.Op, Right: rightQ,
		})
		return nil
	}
	// Join edge; canonical direction A < B.
	a, b, aq, bq := leftTable, rightTable, leftQ, rightQ
	flipped := false
	if a > b {
		a, b, aq, bq = b, a, bq, aq
		flipped = true
	}
	key := a + "\x00" + b
	e := edges[key]
	if e == nil {
		e = &JoinEdge{A: a, B: b}
		edges[key] = e
	}
	op := c.Op
	if flipped {
		op = flipOp(op)
	}
	if op == relation.OpEq {
		e.Equi = append(e.Equi, relation.EquiJoinCond{Left: aq, Right: bq})
	} else {
		e.Residual = append(e.Residual, relation.ColCol{Left: aq, Op: op, Right: bq})
	}
	return nil
}

func flipOp(op relation.CmpOp) relation.CmpOp {
	switch op {
	case relation.OpLt:
		return relation.OpGt
	case relation.OpLe:
		return relation.OpGe
	case relation.OpGt:
		return relation.OpLt
	case relation.OpGe:
		return relation.OpLe
	default:
		return op // =, != are symmetric
	}
}

func (r *resolver) classifyTextPred(c TextPred, textSels map[string]textidx.And) error {
	source, isText, err := r.textRef(c.Field)
	if err != nil {
		return err
	}
	if !isText {
		return fmt.Errorf("sqlparse: %q in %q: right side must be a text field", c.ConstTerm, c.Field)
	}
	if c.Field.Column == DocIDField {
		return fmt.Errorf("sqlparse: cannot search the %s pseudo-field", DocIDField)
	}
	if c.IsConst {
		e, err := textidx.MakePred(c.Field.Column, c.ConstTerm)
		if err != nil {
			return fmt.Errorf("sqlparse: %v", err)
		}
		textSels[source] = append(textSels[source], e)
		return nil
	}
	tbl, err := r.tableOf(c.Col)
	if err != nil {
		return err
	}
	r.a.Foreign = append(r.a.Foreign, ForeignPred{
		Source: source,
		Table:  tbl,
		Column: tbl + "." + c.Col.Column,
		Field:  c.Field.Column,
	})
	return nil
}

func (r *resolver) resolveSelect(q *Query) error {
	a := r.a
	addDocField := func(part *TextPart, f string) {
		for _, g := range part.DocFields {
			if g == f {
				return
			}
		}
		part.DocFields = append(part.DocFields, f)
		part.LongForm = true
	}
	if q.Star {
		for _, name := range a.Tables {
			for _, col := range r.cat.Tables[name].Schema.Cols {
				a.OutputCols = append(a.OutputCols, name+"."+col.Name)
			}
		}
		for i := range a.Text {
			part := &a.Text[i]
			a.OutputCols = append(a.OutputCols, part.Source+"."+DocIDField)
			for _, f := range r.cat.Text[part.Source].Fields {
				a.OutputCols = append(a.OutputCols, part.Source+"."+f)
				addDocField(part, f)
			}
		}
		return nil
	}
	for _, c := range q.Select {
		source, isText, err := r.textRef(c)
		if err != nil {
			return err
		}
		if isText {
			a.OutputCols = append(a.OutputCols, source+"."+c.Column)
			if c.Column != DocIDField {
				addDocField(a.Part(source), c.Column)
			}
			continue
		}
		tbl, err := r.tableOf(c)
		if err != nil {
			return err
		}
		a.OutputCols = append(a.OutputCols, tbl+"."+c.Column)
	}
	return nil
}

// ForeignPredsOf returns the foreign predicates whose relation column
// belongs to the given table.
func (a *Analyzed) ForeignPredsOf(table string) []ForeignPred {
	var out []ForeignPred
	for _, f := range a.Foreign {
		if f.Table == table {
			out = append(out, f)
		}
	}
	return out
}

// ForeignTables returns the sorted set of tables referenced by foreign
// predicates.
func (a *Analyzed) ForeignTables() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range a.Foreign {
		if !seen[f.Table] {
			seen[f.Table] = true
			out = append(out, f.Table)
		}
	}
	sort.Strings(out)
	return out
}

// String summarises the classification (useful in EXPLAIN output).
func (a *Analyzed) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tables: %s", strings.Join(a.Tables, ", "))
	for _, part := range a.Text {
		fmt.Fprintf(&b, "; text: %s", part.Source)
		if part.Sel != nil {
			fmt.Fprintf(&b, " [%s]", part.Sel)
		}
	}
	for _, f := range a.Foreign {
		fmt.Fprintf(&b, "; foreign: %s", f)
	}
	return b.String()
}
