package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"textjoin/internal/relation"
	"textjoin/internal/value"
)

// Parse parses a conjunctive select-from-where query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("sqlparse: unexpected %s after query", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tKeyword || t.text != kw {
		return fmt.Errorf("sqlparse: expected %q, got %s", kw, t)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.peek().kind == tStar {
		p.next()
		q.Star = true
	} else {
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, c)
			if p.peek().kind != tComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tIdent {
			return nil, fmt.Errorf("sqlparse: expected table name, got %s", t)
		}
		q.From = append(q.From, strings.ToLower(t.text))
		if p.peek().kind != tComma {
			break
		}
		p.next()
	}
	if p.peek().kind == tEOF {
		return q, nil
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	for {
		c, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		q.Conjuncts = append(q.Conjuncts, c)
		if p.peek().kind == tKeyword && p.peek().text == "and" {
			p.next()
			continue
		}
		break
	}
	return q, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t := p.next()
	if t.kind != tIdent {
		return ColRef{}, fmt.Errorf("sqlparse: expected column reference, got %s", t)
	}
	ref := ColRef{Column: strings.ToLower(t.text)}
	if p.peek().kind == tDot {
		p.next()
		col := p.next()
		if col.kind != tIdent {
			return ColRef{}, fmt.Errorf("sqlparse: expected column after '.', got %s", col)
		}
		ref.Table = ref.Column
		ref.Column = strings.ToLower(col.text)
	}
	return ref, nil
}

// parseConjunct parses one where-clause condition.
func (p *parser) parseConjunct() (Conjunct, error) {
	// String constant on the left: must be "'term' in field".
	if p.peek().kind == tString {
		term := p.next().text
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		field, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return TextPred{ConstTerm: term, IsConst: true, Field: field}, nil
	}
	left, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	t := p.next()
	switch t.kind {
	case tKeyword:
		if t.text != "in" {
			return nil, fmt.Errorf("sqlparse: expected comparison or 'in', got %s", t)
		}
		field, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return TextPred{Col: left, Field: field}, nil
	case tEq, tNe, tLt, tLe, tGt, tGe:
		op := cmpOpOf(t.kind)
		right := p.peek()
		switch right.kind {
		case tString:
			p.next()
			return Comparison{Left: left, Op: op, RightLit: value.String(right.text)}, nil
		case tNumber:
			p.next()
			lit, err := parseNumber(right.text)
			if err != nil {
				return nil, err
			}
			return Comparison{Left: left, Op: op, RightLit: lit}, nil
		case tIdent:
			rc, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			return Comparison{Left: left, Op: op, RightIsCol: true, RightCol: rc}, nil
		default:
			return nil, fmt.Errorf("sqlparse: expected literal or column, got %s", right)
		}
	default:
		return nil, fmt.Errorf("sqlparse: expected comparison or 'in', got %s", t)
	}
}

func cmpOpOf(k tokKind) relation.CmpOp {
	switch k {
	case tEq:
		return relation.OpEq
	case tNe:
		return relation.OpNe
	case tLt:
		return relation.OpLt
	case tLe:
		return relation.OpLe
	case tGt:
		return relation.OpGt
	default:
		return relation.OpGe
	}
}

func parseNumber(text string) (value.Value, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("sqlparse: bad number %q", text)
		}
		return value.Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return value.Null(), fmt.Errorf("sqlparse: bad number %q", text)
	}
	return value.Int(i), nil
}
