package value

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() is not null")
	}
	if v := Bool(true); !v.AsBool() || v.Kind() != KindBool {
		t.Error("Bool(true) round-trip failed")
	}
	if v := Int(-7); v.AsInt() != -7 || v.Kind() != KindInt {
		t.Error("Int(-7) round-trip failed")
	}
	if v := Float(2.5); v.AsFloat() != 2.5 || v.Kind() != KindFloat {
		t.Error("Float(2.5) round-trip failed")
	}
	if v := String("abc"); v.AsString() != "abc" || v.Kind() != KindString {
		t.Error("String round-trip failed")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int widening via AsFloat failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
	mustPanic("AsInt on string", func() { String("x").AsInt() })
	mustPanic("AsFloat on string", func() { String("x").AsFloat() })
	mustPanic("AsString on null", func() { Null().AsString() })
}

func TestText(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(42), "42"},
		{Float(1.5), "1.5"},
		{String("Gravano"), "Gravano"},
	}
	for _, c := range cases {
		if got := c.v.Text(); got != c.want {
			t.Errorf("%v.Text() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestStringer(t *testing.T) {
	if got := String("ai").String(); got != "'ai'" {
		t.Errorf("String literal rendering = %q", got)
	}
	if got := Null().String(); got != "NULL" {
		t.Errorf("NULL rendering = %q", got)
	}
	if got := Int(5).String(); got != "5" {
		t.Errorf("Int rendering = %q", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(3), Int(3), 0},
		{Int(3), Float(3.0), 0},
		{Float(2.5), Int(3), -1},
		{Int(3), Float(2.5), 1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(false), 1},
		{Bool(true), Bool(true), 0},
		// cross-kind: ordered by kind to keep Compare total
		{Bool(true), Int(0), -1},
		{Int(0), String(""), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(3), Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Equal(String("a"), String("b")) {
		t.Error("distinct strings reported equal")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	vs := []Value{
		Null(), Bool(false), Bool(true), Int(0), Int(1), Int(-1),
		Float(0.5), String(""), String("a"), String("0"),
	}
	seen := map[string]Value{}
	for _, v := range vs {
		k := v.Key()
		if prev, dup := seen[k]; dup && !Equal(prev, v) {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestKeyNumericNormalisation(t *testing.T) {
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("Int(3) and Float(3.0) compare equal but key differently")
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("Int(3) and Float(3.5) key identically")
	}
}

func TestKeyOf(t *testing.T) {
	a := KeyOf(String("x"), String("y"))
	b := KeyOf(String("xy"), String(""))
	if a == b {
		t.Error("KeyOf boundary ambiguity: ('x','y') == ('xy','')")
	}
	if KeyOf(Int(1), Int(2)) != KeyOf(Int(1), Int(2)) {
		t.Error("KeyOf not deterministic")
	}
}

// quickValue builds an arbitrary Value from fuzz inputs.
func quickValue(sel uint8, i int64, f float64, s string, b bool) Value {
	switch sel % 5 {
	case 0:
		return Null()
	case 1:
		return Bool(b)
	case 2:
		return Int(i)
	case 3:
		return Float(f)
	default:
		return String(s)
	}
}

func TestCompareIsReflexiveAndAntisymmetric(t *testing.T) {
	prop := func(s1 uint8, i1 int64, f1 float64, str1 string, b1 bool,
		s2 uint8, i2 int64, f2 float64, str2 string, b2 bool) bool {
		a := quickValue(s1, i1, f1, str1, b1)
		b := quickValue(s2, i2, f2, str2, b2)
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareEqualIffSameKey(t *testing.T) {
	prop := func(s1 uint8, i1 int64, f1 float64, str1 string, b1 bool,
		s2 uint8, i2 int64, f2 float64, str2 string, b2 bool) bool {
		a := quickValue(s1, i1, f1, str1, b1)
		b := quickValue(s2, i2, f2, str2, b2)
		if f1 != f1 || f2 != f2 { // skip NaN; not representable in SQL literals
			return true
		}
		return Equal(a, b) == (a.Key() == b.Key())
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareSortsTotally(t *testing.T) {
	vs := []Value{
		String("z"), Int(10), Null(), Float(-2.5), Bool(true),
		String("a"), Int(-3), Bool(false), Float(10),
	}
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
	for i := 1; i < len(vs); i++ {
		if Compare(vs[i-1], vs[i]) > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, vs[i-1], vs[i])
		}
	}
	if !vs[0].IsNull() {
		t.Error("NULL should sort first")
	}
}
