// Package value defines the typed scalar values that flow through the
// relational engine and the federated query executor.
//
// A Value is a small immutable variant record. The zero Value is NULL.
// Values support three-valued-logic-free comparison: NULL compares lower
// than every non-NULL value and equal to itself, which is sufficient for
// the conjunctive (SPJ) queries studied in the paper.
package value

import (
	"fmt"
	"strconv"
)

// Kind enumerates the scalar types supported by the engine.
type Kind uint8

// The supported kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a typed scalar. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics if v is not a boolean.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.b
}

// AsInt returns the integer payload; it panics if v is not an integer.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64; it panics if v is
// neither an integer nor a float.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("value: AsFloat on " + v.kind.String())
	}
}

// AsString returns the string payload; it panics if v is not a string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// Text renders any value as text. Strings are returned verbatim; other kinds
// use their canonical literal form. It is the rendering used when a
// relational value is substituted into a text search term.
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// String implements fmt.Stringer with a SQL-literal-like rendering.
func (v Value) String() string {
	if v.kind == KindString {
		return "'" + v.s + "'"
	}
	if v.kind == KindNull {
		return "NULL"
	}
	return v.Text()
}

// numericKind reports whether k is int or float.
func numericKind(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare returns -1, 0, or +1 ordering a before b. NULL sorts first and
// equals only NULL. Integers and floats compare numerically with each other.
// Comparing incomparable kinds (e.g. a string with an integer) orders by
// kind, so Compare is a total order usable for sorting and keying.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.kind) && numericKind(b.kind) {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		default:
			return 0
		}
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether a and b are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a string that is equal for equal values and distinct for
// distinct values (within a kind), suitable as a map key for hashing,
// grouping and duplicate elimination.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Normalise integral floats to the int representation so 3.0 == 3
		// under numeric comparison also keys identically.
		f := v.f
		if f == float64(int64(f)) {
			return "i" + strconv.FormatInt(int64(f), 10)
		}
		return "f" + strconv.FormatFloat(f, 'b', -1, 64)
	case KindString:
		return "s" + v.s
	default:
		return "?"
	}
}

// KeyOf returns the concatenated key of several values, usable as a
// composite grouping key.
func KeyOf(vs ...Value) string {
	n := 0
	for _, v := range vs {
		n += len(v.Key()) + 1
	}
	buf := make([]byte, 0, n)
	for _, v := range vs {
		buf = append(buf, v.Key()...)
		buf = append(buf, 0x1f) // unit separator
	}
	return string(buf)
}
