package plan

import (
	"textjoin/internal/relation"
)

// This file implements the two plan rewrites that feed the vectorized
// execution core (internal/vec): filter pushdown and projection pruning.
// Both run after optimization — they change what each operator carries,
// not the join order or method the cost model chose — and both are engine-
// agnostic: the row path honors them the same way the batch path does.
//
// Filter pushdown moves single-side conjuncts of join residuals down into
// the scan that owns their columns, so rejected rows never reach a join.
// Projection pruning computes, top-down, the set of columns each subtree
// must produce (select list + join/probe/text-join references) and
// restricts every Scan to exactly that set, so joins carry only referenced
// columns. A Scan's predicate is evaluated against the full base row, so a
// pushed filter may reference columns the projection then drops.

// Prune rewrites the plan in place, pushing residual filters into scans
// and restricting scans to referenced columns. schemaOf resolves a base
// table name to its qualified schema (as the executor scans it). Nodes
// holding predicates outside the relation package's vocabulary are left
// untouched — their column sets cannot be known statically.
func Prune(root Node, schemaOf func(table string) (*relation.Schema, bool)) Node {
	p := &pruner{schemaOf: schemaOf, schemas: map[Node]*relation.Schema{}}
	if p.schemaOfNode(root) == nil {
		// A table name failed to resolve; leave the plan as optimized.
		return root
	}
	p.pushFilters(root)
	// Residuals moved; recompute nothing — schemas are unchanged by
	// pushdown (only Scan.Pred and Join.Residual were touched).
	p.pruneColumns(root, rootRequired(root))
	return root
}

// rootRequired returns the column set the plan's consumer needs. Only a
// root Project narrows it; any other root shape keeps every column.
func rootRequired(root Node) map[string]bool {
	pr, ok := root.(*Project)
	if !ok {
		return nil
	}
	req := make(map[string]bool, len(pr.Columns))
	for _, c := range pr.Columns {
		req[c] = true
	}
	return req
}

type pruner struct {
	schemaOf func(table string) (*relation.Schema, bool)
	schemas  map[Node]*relation.Schema
}

// schemaOfNode returns the output schema of a subtree as the executor
// produces it (before pruning), memoized; nil when a table is unknown.
func (p *pruner) schemaOfNode(n Node) *relation.Schema {
	if s, ok := p.schemas[n]; ok {
		return s
	}
	var s *relation.Schema
	switch n := n.(type) {
	case *Scan:
		base, ok := p.schemaOf(n.Table)
		if ok {
			s = base
		}
	case *Probe:
		s = p.schemaOfNode(n.Input)
	case *Join:
		l, r := p.schemaOfNode(n.Left), p.schemaOfNode(n.Right)
		if l != nil && r != nil {
			s = l.Concat(r)
		}
	case *TextJoin:
		in := p.schemaOfNode(n.Input)
		if in != nil {
			cols := append([]relation.Column(nil), in.Cols...)
			for _, name := range textJoinDocColumns(n) {
				cols = append(cols, relation.Column{Name: name})
			}
			s = &relation.Schema{Cols: cols}
		}
	case *Project:
		in := p.schemaOfNode(n.Input)
		if in != nil {
			cols := make([]relation.Column, 0, len(n.Columns))
			for _, name := range n.Columns {
				if idx := in.ColumnIndex(name); idx >= 0 {
					cols = append(cols, in.Cols[idx])
				}
			}
			s = &relation.Schema{Cols: cols}
		}
	}
	p.schemas[n] = s
	return s
}

// textJoinDocColumns lists the qualified document columns a TextJoin
// appends to its input: the document id, then the requested fields.
func textJoinDocColumns(n *TextJoin) []string {
	out := make([]string, 0, 1+len(n.DocFields))
	out = append(out, n.Source+".docid")
	for _, f := range n.DocFields {
		out = append(out, n.Source+"."+f)
	}
	return out
}

// covers reports whether every column is present in s.
func covers(s *relation.Schema, cols []string) bool {
	for _, c := range cols {
		if s.ColumnIndex(c) < 0 {
			return false
		}
	}
	return true
}

// pushFilters walks the tree and, at every Join, pushes residual conjuncts
// that reference only one side's columns down into that side.
func (p *pruner) pushFilters(n Node) {
	switch n := n.(type) {
	case *Join:
		if n.Residual != nil {
			var keep []relation.Predicate
			for _, conj := range conjuncts(n.Residual) {
				if !p.pushInto(n.Left, conj) && !p.pushInto(n.Right, conj) {
					keep = append(keep, conj)
				}
			}
			n.Residual = rebuildConjunction(keep)
		}
		p.pushFilters(n.Left)
		p.pushFilters(n.Right)
	case *Probe:
		p.pushFilters(n.Input)
	case *TextJoin:
		p.pushFilters(n.Input)
	case *Project:
		p.pushFilters(n.Input)
	}
}

// conjuncts flattens nested Ands into a list of conjuncts, dropping True.
func conjuncts(pred relation.Predicate) []relation.Predicate {
	switch pred := pred.(type) {
	case nil, relation.True:
		return nil
	case relation.And:
		var out []relation.Predicate
		for _, sub := range pred {
			out = append(out, conjuncts(sub)...)
		}
		return out
	default:
		return []relation.Predicate{pred}
	}
}

// rebuildConjunction is the inverse of conjuncts.
func rebuildConjunction(conj []relation.Predicate) relation.Predicate {
	switch len(conj) {
	case 0:
		return nil
	case 1:
		return conj[0]
	default:
		return relation.And(conj)
	}
}

// pushInto pushes pred down into the subtree if the subtree's output
// covers all its columns and a Scan (or Join residual) can absorb it;
// it reports whether the predicate was placed.
func (p *pruner) pushInto(n Node, pred relation.Predicate) bool {
	cols, ok := relation.PredicateColumns(pred)
	if !ok {
		return false
	}
	s := p.schemaOfNode(n)
	if s == nil || !covers(s, cols) {
		return false
	}
	switch n := n.(type) {
	case *Scan:
		n.Pred = andPred(n.Pred, pred)
		return true
	case *Probe:
		// Probe is a semi-join filter: selection commutes with it.
		return p.pushInto(n.Input, pred)
	case *Join:
		if p.pushInto(n.Left, pred) || p.pushInto(n.Right, pred) {
			return true
		}
		n.Residual = andPred(n.Residual, pred)
		return true
	default:
		// TextJoin / Project: appending or reordering columns does not
		// commute trivially with a filter that a scan below could not
		// absorb; keep the predicate where it was.
		return false
	}
}

// andPred conjoins two predicates, treating nil and True as identity.
func andPred(a, b relation.Predicate) relation.Predicate {
	ca, cb := conjuncts(a), conjuncts(b)
	return rebuildConjunction(append(ca, cb...))
}

// pruneColumns propagates required-column sets top-down. required==nil
// means "keep everything" (used when a requirement cannot be computed,
// e.g. a residual with an unknown predicate type).
func (p *pruner) pruneColumns(n Node, required map[string]bool) {
	switch n := n.(type) {
	case *Scan:
		s := p.schemaOfNode(n)
		if required == nil || s == nil {
			n.Cols = nil
			return
		}
		cols := make([]string, 0, len(required))
		for _, c := range s.Cols {
			if required[c.Name] {
				cols = append(cols, c.Name)
			}
		}
		if len(cols) == len(s.Cols) {
			n.Cols = nil // nothing pruned; keep the plan rendering clean
			return
		}
		if len(cols) == 0 && len(s.Cols) > 0 {
			// Keep one column so the scan still produces its cardinality.
			cols = append(cols, s.Cols[0].Name)
		}
		n.Cols = cols
	case *Probe:
		req := copyReq(required)
		if req != nil {
			for _, f := range n.Preds {
				req[f.Column] = true
			}
		}
		p.pruneColumns(n.Input, req)
	case *Join:
		var lReq, rReq map[string]bool
		ls, rs := p.schemaOfNode(n.Left), p.schemaOfNode(n.Right)
		if required != nil && ls != nil && rs != nil {
			resCols, ok := []string(nil), true
			if n.Residual != nil {
				resCols, ok = relation.PredicateColumns(n.Residual)
			}
			if ok {
				lReq, rReq = map[string]bool{}, map[string]bool{}
				for c := range required {
					if ls.ColumnIndex(c) >= 0 {
						lReq[c] = true
					}
					if rs.ColumnIndex(c) >= 0 {
						rReq[c] = true
					}
				}
				add := func(c string) {
					if ls.ColumnIndex(c) >= 0 {
						lReq[c] = true
					}
					if rs.ColumnIndex(c) >= 0 {
						rReq[c] = true
					}
				}
				for _, e := range n.Equi {
					add(e.Left)
					add(e.Right)
				}
				for _, c := range resCols {
					add(c)
				}
			}
		}
		p.pruneColumns(n.Left, lReq)
		p.pruneColumns(n.Right, rReq)
	case *TextJoin:
		req := copyReq(required)
		if req != nil {
			for _, c := range textJoinDocColumns(n) {
				delete(req, c)
			}
			for _, f := range n.Preds {
				req[f.Column] = true
			}
			for _, c := range n.ProbeColumns {
				req[c] = true
			}
		}
		p.pruneColumns(n.Input, req)
	case *Project:
		req := make(map[string]bool, len(n.Columns))
		for _, c := range n.Columns {
			req[c] = true
		}
		p.pruneColumns(n.Input, req)
	}
}

// copyReq clones a requirement set, preserving nil (= keep everything).
func copyReq(req map[string]bool) map[string]bool {
	if req == nil {
		return nil
	}
	out := make(map[string]bool, len(req))
	for k, v := range req {
		out[k] = v
	}
	return out
}
