package plan

import (
	"strings"
	"testing"

	"textjoin/internal/cost"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func samplePlan() Node {
	scanS := &Scan{Est: Est{EstCard: 40, EstCost: 0.1}, Table: "student",
		Pred: relation.ColConst{Col: "student.year", Op: relation.OpGt, Const: value.Int(3)}}
	probe := &Probe{Est: Est{EstCard: 4, EstCost: 10}, Input: scanS,
		Preds:   []sqlparse.ForeignPred{{Table: "student", Column: "student.name", Field: "author"}},
		TextSel: textidx.Term{Field: "year", Word: "1993"}}
	scanF := &Scan{Est: Est{EstCard: 4, EstCost: 0.01}, Table: "faculty", Pred: relation.True{}}
	j := &Join{Est: Est{EstCard: 14, EstCost: 11}, Left: probe, Right: scanF,
		Equi:      []relation.EquiJoinCond{{Left: "student.dept", Right: "faculty.dept"}},
		Residual:  relation.ColCol{Left: "faculty.dept", Op: relation.OpNe, Right: "student.dept"},
		Algorithm: "hash"}
	tj := &TextJoin{Est: Est{EstCard: 20, EstCost: 60}, Input: j, Source: "mercury",
		Method:       cost.MethodPTS,
		ProbeColumns: []string{"student.name"},
		Preds: []sqlparse.ForeignPred{
			{Table: "student", Column: "student.name", Field: "author"},
			{Table: "faculty", Column: "faculty.fname", Field: "author"},
		},
		TextSel:  textidx.Term{Field: "year", Word: "1993"},
		LongForm: false}
	return &Project{Est: Est{EstCard: 20, EstCost: 60}, Input: tj,
		Columns: []string{"student.name", "mercury.docid"}}
}

func TestExplainRendersEveryNode(t *testing.T) {
	out := String(samplePlan())
	for _, want := range []string{
		"Project(student.name, mercury.docid)",
		"TextJoin[P+TS](mercury:",
		"probe on student.name",
		"sel: year='1993'",
		"Join[hash](student.dept = faculty.dept and faculty.dept != student.dept)",
		"Probe(student.name)",
		"Scan(student) [student.year > 3]",
		"Scan(faculty)",
		"card=40.0",
		"cost=60.00",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Indentation: the deepest scans are indented more than the project.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "Project") {
		t.Errorf("first line = %q", lines[0])
	}
}

func TestCountProbesAndFindTextJoin(t *testing.T) {
	p := samplePlan()
	if CountProbes(p) != 1 {
		t.Fatalf("CountProbes = %d", CountProbes(p))
	}
	tj := FindTextJoin(p)
	if tj == nil || tj.Source != "mercury" {
		t.Fatalf("FindTextJoin = %v", tj)
	}
	scan := &Scan{Table: "x"}
	if CountProbes(scan) != 0 || FindTextJoin(scan) != nil {
		t.Fatal("scan-only plan misreported")
	}
}

func TestDescribeEdgeCases(t *testing.T) {
	s := &Scan{Table: "t", Pred: relation.True{}}
	if strings.Contains(s.Describe(), "[") {
		t.Errorf("True predicate rendered: %s", s.Describe())
	}
	s2 := &Scan{Table: "t"}
	if s2.Describe() != "Scan(t)" {
		t.Errorf("nil predicate rendering: %s", s2.Describe())
	}
	j := &Join{Algorithm: "nested-loop"}
	if !strings.Contains(j.Describe(), "cross") {
		t.Errorf("cross join rendering: %s", j.Describe())
	}
	tj := &TextJoin{Source: "m", Method: cost.MethodTS}
	if strings.Contains(tj.Describe(), "probe on") || strings.Contains(tj.Describe(), "sel:") {
		t.Errorf("bare text join rendering: %s", tj.Describe())
	}
	if len(j.Children()) != 2 || len(tj.Children()) != 1 {
		t.Fatal("children wrong")
	}
}

func TestEstAccessors(t *testing.T) {
	e := Est{EstCard: 5, EstCost: 7}
	if e.Card() != 5 || e.Cost() != 7 {
		t.Fatal("Est accessors wrong")
	}
}
