package plan

import (
	"strings"
	"testing"

	"textjoin/internal/cost"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/value"
)

func pruneSchemaOf(t *testing.T) func(string) (*relation.Schema, bool) {
	t.Helper()
	tables := map[string]*relation.Schema{
		"student": relation.MustSchema(
			relation.Column{Name: "student.name", Kind: value.KindString},
			relation.Column{Name: "student.advisor", Kind: value.KindString},
			relation.Column{Name: "student.year", Kind: value.KindInt},
			relation.Column{Name: "student.dept", Kind: value.KindString},
		),
		"faculty": relation.MustSchema(
			relation.Column{Name: "faculty.fname", Kind: value.KindString},
			relation.Column{Name: "faculty.dept", Kind: value.KindString},
			relation.Column{Name: "faculty.office", Kind: value.KindString},
		),
	}
	return func(name string) (*relation.Schema, bool) {
		s, ok := tables[name]
		return s, ok
	}
}

func TestPrunePushesSingleSideResidual(t *testing.T) {
	left := &Scan{Table: "student"}
	right := &Scan{Table: "faculty"}
	cross := relation.ColCol{Left: "student.dept", Op: relation.OpNe, Right: "faculty.dept"}
	single := relation.ColConst{Col: "student.year", Op: relation.OpGt, Const: value.Int(3)}
	j := &Join{
		Left: left, Right: right,
		Equi:      []relation.EquiJoinCond{{Left: "student.advisor", Right: "faculty.fname"}},
		Residual:  relation.And{single, cross},
		Algorithm: "hash",
	}
	Prune(j, pruneSchemaOf(t))

	if left.Pred == nil || !strings.Contains(left.Pred.String(), "student.year > 3") {
		t.Errorf("single-side conjunct not pushed into scan: %v", left.Pred)
	}
	if j.Residual == nil || strings.Contains(j.Residual.String(), "year") {
		t.Errorf("residual after pushdown = %v, want only the cross conjunct", j.Residual)
	}
	if !strings.Contains(j.Residual.String(), "dept") {
		t.Errorf("cross conjunct lost from residual: %v", j.Residual)
	}
}

func TestPruneRestrictsScanColumns(t *testing.T) {
	left := &Scan{Table: "student"}
	right := &Scan{Table: "faculty"}
	j := &Join{
		Left: left, Right: right,
		Equi:      []relation.EquiJoinCond{{Left: "student.advisor", Right: "faculty.fname"}},
		Algorithm: "hash",
	}
	root := &Project{Input: j, Columns: []string{"student.name"}}
	Prune(root, pruneSchemaOf(t))

	wantLeft := []string{"student.name", "student.advisor"}
	if len(left.Cols) != len(wantLeft) {
		t.Fatalf("left.Cols = %v, want %v", left.Cols, wantLeft)
	}
	for i := range wantLeft {
		if left.Cols[i] != wantLeft[i] {
			t.Fatalf("left.Cols = %v, want %v", left.Cols, wantLeft)
		}
	}
	// The right side contributes only its join column.
	if len(right.Cols) != 1 || right.Cols[0] != "faculty.fname" {
		t.Fatalf("right.Cols = %v, want [faculty.fname]", right.Cols)
	}
	if !strings.Contains(left.Describe(), "-> student.name, student.advisor") {
		t.Errorf("pruned scan not rendered: %s", left.Describe())
	}
}

func TestPruneKeepsTextJoinInputs(t *testing.T) {
	scan := &Scan{Table: "student"}
	tj := &TextJoin{
		Input:        scan,
		Source:       "mercury",
		Method:       cost.MethodPTS,
		ProbeColumns: []string{"student.name"},
		Preds:        []sqlparse.ForeignPred{{Source: "mercury", Table: "student", Column: "student.advisor", Field: "author"}},
		DocFields:    []string{"title"},
	}
	root := &Project{Input: tj, Columns: []string{"student.name", "mercury.title", "mercury.docid"}}
	Prune(root, pruneSchemaOf(t))

	// The scan must keep the probe and predicate columns but may drop the
	// unreferenced year/dept columns; the doc columns are produced by the
	// text join, not required from below.
	got := strings.Join(scan.Cols, ",")
	if got != "student.name,student.advisor" {
		t.Fatalf("scan.Cols = %v, want [student.name student.advisor]", scan.Cols)
	}
}

func TestPruneKeepsOneColumnForCardinality(t *testing.T) {
	scan := &Scan{Table: "faculty"}
	// A count-style consumer referencing no faculty column at all.
	root := &Project{Input: scan, Columns: []string{}}
	Prune(root, pruneSchemaOf(t))
	if len(scan.Cols) != 1 {
		t.Fatalf("scan.Cols = %v, want exactly one retained column", scan.Cols)
	}
}

type opaquePred struct{}

func (opaquePred) Eval(s *relation.Schema, t relation.Tuple) (bool, error) { return true, nil }
func (opaquePred) String() string                                          { return "opaque" }

func TestPruneLeavesUnknownPredicatesAlone(t *testing.T) {
	left := &Scan{Table: "student"}
	right := &Scan{Table: "faculty"}
	j := &Join{
		Left: left, Right: right,
		Equi:      []relation.EquiJoinCond{{Left: "student.advisor", Right: "faculty.fname"}},
		Residual:  opaquePred{},
		Algorithm: "hash",
	}
	root := &Project{Input: j, Columns: []string{"student.name"}}
	Prune(root, pruneSchemaOf(t))
	if _, ok := j.Residual.(opaquePred); !ok {
		t.Fatalf("opaque residual rewritten: %v", j.Residual)
	}
	// Columns cannot be pruned safely under an opaque residual.
	if left.Cols != nil || right.Cols != nil {
		t.Fatalf("pruned under an opaque residual: left=%v right=%v", left.Cols, right.Cols)
	}
}

func TestPruneUnknownTableIsNoop(t *testing.T) {
	scan := &Scan{Table: "ghost"}
	root := &Project{Input: scan, Columns: []string{"ghost.x"}}
	Prune(root, pruneSchemaOf(t))
	if scan.Cols != nil {
		t.Fatalf("pruned a scan of an unknown table: %v", scan.Cols)
	}
}
