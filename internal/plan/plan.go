// Package plan defines the physical plan trees the optimizer produces and
// the executor runs: PrL trees (§6) — left-deep join trees over relational
// scans, optionally augmented with probe (semi-join reducer) nodes, with a
// single foreign-join node against the external text source annotated with
// the join method of §3 and its probe columns.
package plan

import (
	"fmt"
	"io"
	"strings"

	"textjoin/internal/cost"
	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/textidx"
)

// Node is one operator of a physical plan.
type Node interface {
	// Card returns the optimizer's estimated output cardinality.
	Card() float64
	// Cost returns the estimated cumulative cost of the subtree, in the
	// cost model's seconds.
	Cost() float64
	// Children returns the operator's inputs.
	Children() []Node
	// Describe renders the operator itself (one line, no children).
	Describe() string
}

// Est carries the optimizer's estimates; embedded by every node.
type Est struct {
	EstCard float64
	EstCost float64
}

// Card implements Node.
func (e Est) Card() float64 { return e.EstCard }

// Cost implements Node.
func (e Est) Cost() float64 { return e.EstCost }

// Scan reads a base table and applies its selection predicates.
type Scan struct {
	Est
	Table string
	Pred  relation.Predicate // over qualified names; True when none
	// Cols, when non-nil, restricts the scan's output to these qualified
	// columns (projection pruning; set by Prune). Pred is still evaluated
	// against the full base row, so pushed-down filters may reference
	// columns the projection drops.
	Cols []string
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	p := ""
	if s.Pred != nil {
		if _, isTrue := s.Pred.(relation.True); !isTrue {
			p = " [" + s.Pred.String() + "]"
		}
	}
	if s.Cols != nil {
		p += " -> " + strings.Join(s.Cols, ", ")
	}
	return fmt.Sprintf("Scan(%s)%s", s.Table, p)
}

// Probe is the probe-as-semi-join reducer of PrL trees (§6): it keeps the
// input tuples whose probe on the given foreign predicates succeeds.
type Probe struct {
	Est
	Input Node
	// Source is the probed text source's name.
	Source string
	// Preds are the foreign predicates probed (the probe columns are
	// their relation columns).
	Preds []sqlparse.ForeignPred
	// TextSel is the source's text selection; probes carry it (§3.3).
	TextSel textidx.Expr
	// Batched selects batched probe pushdown: distinct bindings packed
	// into few large searches under the term limit instead of one search
	// per binding.
	Batched bool
}

// Children implements Node.
func (p *Probe) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Probe) Describe() string {
	cols := make([]string, len(p.Preds))
	for i, f := range p.Preds {
		cols[i] = f.Column
	}
	suffix := ""
	if p.Batched {
		suffix = " [batched]"
	}
	return fmt.Sprintf("Probe(%s)%s", strings.Join(cols, ", "), suffix)
}

// Join is a relational join between the accumulated left input and a base
// table's scan on the right (left-deep).
type Join struct {
	Est
	Left, Right Node
	Equi        []relation.EquiJoinCond
	Residual    relation.Predicate // nil when none
	// Algorithm is "hash" (equi conditions present) or "nested-loop".
	Algorithm string
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	var conds []string
	for _, e := range j.Equi {
		conds = append(conds, e.Left+" = "+e.Right)
	}
	if j.Residual != nil {
		if _, isTrue := j.Residual.(relation.True); !isTrue {
			conds = append(conds, j.Residual.String())
		}
	}
	cond := strings.Join(conds, " and ")
	if cond == "" {
		cond = "cross"
	}
	return fmt.Sprintf("Join[%s](%s)", j.Algorithm, cond)
}

// TextJoin is the foreign join with the text source: it joins its input
// with the external documents on the foreign predicates, under the text
// selection, using the chosen execution method of §3.
type TextJoin struct {
	Est
	Input Node
	// Source is the text source's name (e.g. "mercury").
	Source string
	// Method is the chosen join method.
	Method cost.Method
	// ProbeColumns are the method's probe columns (probe methods only),
	// as qualified relation column names.
	ProbeColumns []string
	// Preds are all the query's foreign join predicates.
	Preds []sqlparse.ForeignPred
	// TextSel is the text selection (nil when none).
	TextSel textidx.Expr
	// LongForm and DocFields describe the document output needed.
	LongForm  bool
	DocFields []string
}

// Children implements Node.
func (t *TextJoin) Children() []Node { return []Node{t.Input} }

// Describe implements Node.
func (t *TextJoin) Describe() string {
	preds := make([]string, len(t.Preds))
	for i, f := range t.Preds {
		preds[i] = f.String()
	}
	s := fmt.Sprintf("TextJoin[%s](%s: %s", t.Method, t.Source, strings.Join(preds, ", "))
	if t.TextSel != nil {
		s += "; sel: " + t.TextSel.String()
	}
	if len(t.ProbeColumns) > 0 {
		s += "; probe on " + strings.Join(t.ProbeColumns, ", ")
	}
	return s + ")"
}

// Project restricts the output to the query's select list.
type Project struct {
	Est
	Input   Node
	Columns []string
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	return "Project(" + strings.Join(p.Columns, ", ") + ")"
}

// Explain writes an indented rendering of the plan tree with estimates.
func Explain(w io.Writer, n Node) {
	explain(w, n, 0)
}

func explain(w io.Writer, n Node, depth int) {
	fmt.Fprintf(w, "%s%s  (card=%.1f cost=%.2f)\n",
		strings.Repeat("  ", depth), n.Describe(), n.Card(), n.Cost())
	for _, c := range n.Children() {
		explain(w, c, depth+1)
	}
}

// String renders the plan as a string.
func String(n Node) string {
	var b strings.Builder
	Explain(&b, n)
	return b.String()
}

// CountProbes returns the number of Probe nodes in the tree (TextJoin-
// internal probing not included).
func CountProbes(n Node) int {
	count := 0
	if _, ok := n.(*Probe); ok {
		count++
	}
	for _, c := range n.Children() {
		count += CountProbes(c)
	}
	return count
}

// Walk calls f on every node of the tree in pre-order.
func Walk(n Node, f func(Node)) {
	if n == nil {
		return
	}
	f(n)
	for _, c := range n.Children() {
		Walk(c, f)
	}
}

// TextJoins returns every TextJoin node in the tree, in pre-order — a
// multi-source query has one per text source.
func TextJoins(n Node) []*TextJoin {
	var out []*TextJoin
	Walk(n, func(n Node) {
		if t, ok := n.(*TextJoin); ok {
			out = append(out, t)
		}
	})
	return out
}

// FindTextJoin returns the plan's TextJoin node, or nil.
func FindTextJoin(n Node) *TextJoin {
	if t, ok := n.(*TextJoin); ok {
		return t
	}
	for _, c := range n.Children() {
		if t := FindTextJoin(c); t != nil {
			return t
		}
	}
	return nil
}
