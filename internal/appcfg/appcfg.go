// Package appcfg is the engine configuration shared by the command-line
// binaries. fedql (the single-query / REPL tool) and queryd (the
// concurrent query server) assemble the same stack — demo or CSV tables
// plus a local, remote, or sharded-remote text service — so the flag
// names, help strings, defaults and wiring live here once, and the two
// binaries cannot drift apart.
package appcfg

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"textjoin/internal/core"
	"textjoin/internal/ingest"
	"textjoin/internal/optimizer"
	"textjoin/internal/relation"
	"textjoin/internal/shard"
	"textjoin/internal/texservice"
	"textjoin/internal/workload"
)

// TableList collects repeatable -table name=path.csv flags.
type TableList []string

// String implements flag.Value.
func (t *TableList) String() string { return strings.Join(*t, ",") }

// Set implements flag.Value.
func (t *TableList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// EngineConfig selects the tables, the text backend and the optimizer
// mode for one engine. Zero values are filled by Defaults; binaries may
// override individual defaults (e.g. queryd enables the search cache)
// before calling RegisterFlags.
type EngineConfig struct {
	Docs        int           // generated corpus size
	Seed        int64         // generation seed
	Mode        string        // optimizer mode: traditional, prl, greedy
	Remote      string        // textserve endpoint(s); comma-separated list = sharded cluster
	BestEffort  bool          // sharded remote: degrade on shard failure
	Pool        int           // remote connection-pool size
	Timeout     time.Duration // per-call remote timeout, 0 = none
	Retries     int           // remote attempt budget
	SearchCache int           // shared search-result LRU entries, 0 = off
	ProbeCache  int           // cross-query probe-result cache entries, 0 = off
	BatchProbe  bool          // let the optimizer batch probe round trips
	Vectorized  bool          // column-oriented batch execution (default on)
	LiveIngest  bool          // mutable in-process index accepting live writes
	IngestDir   string        // WAL + snapshot directory for -live (implies -live)
	Tables      TableList     // CSV tables as name=path.csv
}

// Defaults returns the shared defaults (in-process demo database, PrL
// optimizer, no cache).
func Defaults() EngineConfig {
	return EngineConfig{
		Docs:       2000,
		Seed:       1,
		Mode:       "prl",
		Pool:       texservice.DefaultPoolSize,
		Retries:    1,
		Vectorized: true,
	}
}

// RegisterFlags registers the shared engine flags on fs, using the
// config's current values as defaults and writing parsed values back into
// it.
func (c *EngineConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Docs, "docs", c.Docs, "corpus size for the generated text source")
	fs.Int64Var(&c.Seed, "seed", c.Seed, "generation seed")
	fs.StringVar(&c.Mode, "mode", c.Mode, "optimizer mode: traditional, prl, greedy")
	fs.StringVar(&c.Remote, "remote", c.Remote, "textserve address(es) instead of the in-process index; a comma-separated list (host:port,host:port,…) is treated as a document-sharded cluster in partition order")
	fs.BoolVar(&c.BestEffort, "besteffort", c.BestEffort, "with a sharded -remote list: degrade gracefully on shard failure instead of failing the query (results may be partial)")
	fs.IntVar(&c.Pool, "pool", c.Pool, "remote connection-pool size (with -remote)")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-call timeout against the remote server, 0 = none (with -remote)")
	fs.IntVar(&c.Retries, "retries", c.Retries, "total attempt budget for transient remote failures (with -remote)")
	fs.IntVar(&c.SearchCache, "cache", c.SearchCache, "shared search-result cache entries, 0 = off")
	fs.IntVar(&c.ProbeCache, "probe-cache", c.ProbeCache, "cross-query probe-result cache entries (keyed on normalized expressions), 0 = off")
	fs.BoolVar(&c.BatchProbe, "batch-probe", c.BatchProbe, "let the optimizer batch probe round trips: distinct probe bindings packed into few large OR searches under the service's term limit")
	fs.BoolVar(&c.Vectorized, "vectorized", c.Vectorized, "run relational operators as column-oriented batch pipelines; -vectorized=false falls back to the row-at-a-time engine")
	fs.BoolVar(&c.LiveIngest, "live", c.LiveIngest, "serve the in-process text source from a mutable live-ingest index (accepts document writes); in-memory unless -ingest-dir is set")
	fs.StringVar(&c.IngestDir, "ingest-dir", c.IngestDir, "durability directory for the live-ingest index (WAL + snapshots); implies -live, replays any existing log on start")
	fs.Var(&c.Tables, "table", "register a CSV table as name=path.csv (repeatable)")
}

// DialText connects the remote text service: one endpoint is a plain
// client, several comma-separated endpoints are composed into a
// document-sharded federation (each endpoint serving one partition, in
// order — e.g. three textserve processes started with -shard 0/3, 1/3,
// 2/3). Per-endpoint pools, timeouts and retries apply to each shard.
func (c *EngineConfig) DialText() (texservice.Service, func(), error) {
	dialOpts := []texservice.DialOption{texservice.WithPoolSize(c.Pool)}
	if c.Timeout > 0 {
		dialOpts = append(dialOpts, texservice.WithTimeout(c.Timeout))
	}
	if c.Retries > 1 {
		policy := texservice.DefaultRetryPolicy()
		policy.MaxAttempts = c.Retries
		dialOpts = append(dialOpts, texservice.WithRetry(policy))
	}
	var remotes []*texservice.Remote
	cleanup := func() {
		for _, r := range remotes {
			r.Close()
		}
	}
	endpoints := strings.Split(c.Remote, ",")
	for _, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			cleanup()
			return nil, nil, fmt.Errorf("empty endpoint in -remote %q", c.Remote)
		}
		r, err := texservice.Dial(ep, nil, dialOpts...)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("dialing %s: %w", ep, err)
		}
		remotes = append(remotes, r)
	}
	if len(remotes) == 1 {
		return remotes[0], cleanup, nil
	}
	shards := make([]texservice.Service, len(remotes))
	for i, r := range remotes {
		shards[i] = r
	}
	var shardOpts []shard.Option
	if c.BestEffort {
		shardOpts = append(shardOpts, shard.WithBestEffort())
	}
	svc, err := shard.New(shards, shardOpts...)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return svc, cleanup, nil
}

// BuildEngine assembles the engine the config describes: demo or CSV
// tables plus a local or remote text service registered as "mercury".
// The returned cleanup closes remote connections and is safe to call
// even on a nil error path exactly once.
func (c *EngineConfig) BuildEngine() (*core.Engine, func(), error) {
	opts := core.DefaultOptions()
	switch c.Mode {
	case "traditional":
		opts.Optimizer.Mode = optimizer.ModeTraditional
	case "prl":
		opts.Optimizer.Mode = optimizer.ModePrL
	case "greedy":
		opts.Optimizer.Mode = optimizer.ModePrLGreedy
	default:
		return nil, nil, fmt.Errorf("unknown mode %q", c.Mode)
	}
	opts.Seed = c.Seed
	opts.SearchCache = c.SearchCache
	opts.ProbeCache = c.ProbeCache
	opts.Optimizer.BatchProbe = c.BatchProbe
	opts.RowEngine = !c.Vectorized

	demo := workload.NewDemo(c.Docs, c.Seed)
	cleanup := func() {}
	var svc texservice.Service
	if c.Remote != "" {
		var err error
		svc, cleanup, err = c.DialText()
		if err != nil {
			return nil, nil, err
		}
	} else if c.LiveIngest || c.IngestDir != "" {
		// Mutable live-ingest backend: the demo corpus becomes the base
		// snapshot, writes layer over it in a delta (WAL-durable when
		// -ingest-dir is set, in-memory otherwise).
		store, err := ingest.Open(demo.Corpus.Index, ingest.Options{Dir: c.IngestDir})
		if err != nil {
			return nil, nil, fmt.Errorf("opening live-ingest store: %w", err)
		}
		svc = ingest.NewLive(store,
			ingest.WithShortFields("title", "author", "year"))
		cleanup = func() { _ = store.Close() }
	} else {
		local, err := texservice.NewLocal(demo.Corpus.Index,
			texservice.WithShortFields("title", "author", "year"))
		if err != nil {
			return nil, nil, err
		}
		svc = local
	}

	eng := core.NewEngineWith(opts)
	if len(c.Tables) > 0 {
		for _, spec := range c.Tables {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				cleanup()
				return nil, nil, fmt.Errorf("bad -table %q; want name=path.csv", spec)
			}
			tbl, err := relation.LoadCSVFile(strings.ToLower(name), path)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			if err := eng.RegisterTable(tbl); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
	} else {
		for _, tbl := range demo.Catalog.Tables {
			if err := eng.RegisterTable(tbl); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
	}
	if err := eng.RegisterTextSource("mercury", svc, demo.Corpus.Fields()...); err != nil {
		cleanup()
		return nil, nil, err
	}
	return eng, cleanup, nil
}
