// Package appcfg is the engine configuration shared by the command-line
// binaries. fedql (the single-query / REPL tool) and queryd (the
// concurrent query server) assemble the same stack — demo or CSV tables
// plus a local, remote, or sharded-remote text service — so the flag
// names, help strings, defaults and wiring live here once, and the two
// binaries cannot drift apart.
package appcfg

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"textjoin/internal/core"
	"textjoin/internal/ingest"
	"textjoin/internal/optimizer"
	"textjoin/internal/relation"
	"textjoin/internal/replica"
	"textjoin/internal/shard"
	"textjoin/internal/texservice"
	"textjoin/internal/workload"
)

// TableList collects repeatable -table name=path.csv flags.
type TableList []string

// String implements flag.Value.
func (t *TableList) String() string { return strings.Join(*t, ",") }

// Set implements flag.Value.
func (t *TableList) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// EngineConfig selects the tables, the text backend and the optimizer
// mode for one engine. Zero values are filled by Defaults; binaries may
// override individual defaults (e.g. queryd enables the search cache)
// before calling RegisterFlags.
type EngineConfig struct {
	Docs        int           // generated corpus size
	Seed        int64         // generation seed
	Mode        string        // optimizer mode: traditional, prl, greedy
	Remote      string        // textserve endpoint(s); comma-separated list = sharded cluster
	BestEffort  bool          // sharded remote: degrade on shard failure
	Pool        int           // remote connection-pool size
	Timeout     time.Duration // per-call remote timeout, 0 = none
	Retries     int           // remote attempt budget
	SearchCache int           // shared search-result LRU entries, 0 = off
	ProbeCache  int           // cross-query probe-result cache entries, 0 = off
	BatchProbe  bool          // let the optimizer batch probe round trips
	Vectorized  bool          // column-oriented batch execution (default on)
	LiveIngest  bool          // mutable in-process index accepting live writes
	IngestDir   string        // WAL + snapshot directory for -live (implies -live)
	Replicas    int           // in-process replicas per partition (>1 enables the routing tier)
	Partitions  int           // partitions of the in-process replicated fleet
	Hedge       time.Duration // fixed hedge budget; 0 = adaptive p95, negative disables hedging
	Tables      TableList     // CSV tables as name=path.csv

	// Fleet is populated by BuildEngine (and DialText, with pipe-grouped
	// -remote endpoints) when replication is configured: the per-partition
	// routing Sets, for wiring routing stats into the gateway's /metrics.
	// Nil when the text stack is unreplicated.
	Fleet *replica.Fleet
}

// Defaults returns the shared defaults (in-process demo database, PrL
// optimizer, no cache).
func Defaults() EngineConfig {
	return EngineConfig{
		Docs:       2000,
		Seed:       1,
		Mode:       "prl",
		Pool:       texservice.DefaultPoolSize,
		Retries:    1,
		Vectorized: true,
		Replicas:   1,
		Partitions: 1,
	}
}

// RegisterFlags registers the shared engine flags on fs, using the
// config's current values as defaults and writing parsed values back into
// it.
func (c *EngineConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Docs, "docs", c.Docs, "corpus size for the generated text source")
	fs.Int64Var(&c.Seed, "seed", c.Seed, "generation seed")
	fs.StringVar(&c.Mode, "mode", c.Mode, "optimizer mode: traditional, prl, greedy")
	fs.StringVar(&c.Remote, "remote", c.Remote, "textserve address(es) instead of the in-process index; a comma-separated list (host:port,host:port,…) is treated as a document-sharded cluster in partition order, and pipe-grouped endpoints (a:1|a:2,b:1|b:2) as interchangeable replicas of each partition behind the load-aware routing tier")
	fs.BoolVar(&c.BestEffort, "besteffort", c.BestEffort, "with a sharded -remote list: degrade gracefully on shard failure instead of failing the query (results may be partial)")
	fs.IntVar(&c.Pool, "pool", c.Pool, "remote connection-pool size (with -remote)")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-call timeout against the remote server, 0 = none (with -remote)")
	fs.IntVar(&c.Retries, "retries", c.Retries, "total attempt budget for transient remote failures (with -remote)")
	fs.IntVar(&c.SearchCache, "cache", c.SearchCache, "shared search-result cache entries, 0 = off")
	fs.IntVar(&c.ProbeCache, "probe-cache", c.ProbeCache, "cross-query probe-result cache entries (keyed on normalized expressions), 0 = off")
	fs.BoolVar(&c.BatchProbe, "batch-probe", c.BatchProbe, "let the optimizer batch probe round trips: distinct probe bindings packed into few large OR searches under the service's term limit")
	fs.BoolVar(&c.Vectorized, "vectorized", c.Vectorized, "run relational operators as column-oriented batch pipelines; -vectorized=false falls back to the row-at-a-time engine")
	fs.BoolVar(&c.LiveIngest, "live", c.LiveIngest, "serve the in-process text source from a mutable live-ingest index (accepts document writes); in-memory unless -ingest-dir is set")
	fs.StringVar(&c.IngestDir, "ingest-dir", c.IngestDir, "durability directory for the live-ingest index (WAL + snapshots); implies -live, replays any existing log on start")
	fs.IntVar(&c.Replicas, "replicas", c.Replicas, "serve the in-process corpus from this many interchangeable replicas per partition behind the load-aware routing tier (hedged requests, failover); 1 = unreplicated")
	fs.IntVar(&c.Partitions, "partitions", c.Partitions, "document partitions of the in-process replicated fleet (with -replicas > 1); each partition gets its own replica group")
	fs.DurationVar(&c.Hedge, "hedge", c.Hedge, "fixed hedge budget for replicated routing: launch a second replica attempt after this long; 0 = adaptive p95 budget, negative disables hedging")
	fs.Var(&c.Tables, "table", "register a CSV table as name=path.csv (repeatable)")
}

// DialText connects the remote text service: one endpoint is a plain
// client, several comma-separated endpoints are composed into a
// document-sharded federation (each endpoint serving one partition, in
// order — e.g. three textserve processes started with -shard 0/3, 1/3,
// 2/3). Pipe-grouped endpoints within a partition — "a:1|a:2,b:1|b:2"
// — are interchangeable replicas of that partition, fronted by the
// load-aware routing tier (power-of-two-choices selection, hedged
// requests, failover); the Fleet field is populated for stats wiring.
// Per-endpoint pools, timeouts and retries apply to each backend.
func (c *EngineConfig) DialText() (texservice.Service, func(), error) {
	dialOpts := []texservice.DialOption{texservice.WithPoolSize(c.Pool)}
	if c.Timeout > 0 {
		dialOpts = append(dialOpts, texservice.WithTimeout(c.Timeout))
	}
	if c.Retries > 1 {
		policy := texservice.DefaultRetryPolicy()
		policy.MaxAttempts = c.Retries
		dialOpts = append(dialOpts, texservice.WithRetry(policy))
	}
	var remotes []*texservice.Remote
	cleanup := func() {
		for _, r := range remotes {
			r.Close()
		}
	}
	dial := func(ep string) (*texservice.Remote, error) {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			return nil, fmt.Errorf("empty endpoint in -remote %q", c.Remote)
		}
		r, err := texservice.Dial(ep, nil, dialOpts...)
		if err != nil {
			return nil, fmt.Errorf("dialing %s: %w", ep, err)
		}
		remotes = append(remotes, r)
		return r, nil
	}

	partitions := strings.Split(c.Remote, ",")
	replicated := strings.Contains(c.Remote, "|")
	if !replicated {
		// Unreplicated: plain client or sharded federation, as before.
		for _, ep := range partitions {
			if _, err := dial(ep); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
		if len(remotes) == 1 {
			return remotes[0], cleanup, nil
		}
		shards := make([]texservice.Service, len(remotes))
		for i, r := range remotes {
			shards[i] = r
		}
		svc, err := shard.New(shards, c.shardOptions()...)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return svc, cleanup, nil
	}

	// Replicated: each comma-separated group lists one partition's
	// replicas, pipe-separated. A replica that is down at dial time is
	// skipped with a warning rather than sinking the fleet — that is
	// the point of replication — but a partition with no reachable
	// replica at all is fatal, and so is a malformed endpoint list.
	groups := make([][]texservice.Service, len(partitions))
	for p, group := range partitions {
		for _, ep := range strings.Split(group, "|") {
			if strings.TrimSpace(ep) == "" {
				cleanup()
				return nil, nil, fmt.Errorf("empty endpoint in -remote %q", c.Remote)
			}
			r, err := dial(ep)
			if err != nil {
				fmt.Fprintf(os.Stderr, "warning: skipping unreachable replica: %v\n", err)
				continue
			}
			groups[p] = append(groups[p], r)
		}
		if len(groups[p]) == 0 {
			cleanup()
			return nil, nil, fmt.Errorf("partition %d of -remote %q: no reachable replicas", p, c.Remote)
		}
	}
	fleet, err := replica.NewFleet(groups, c.replicaOptions()...)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	c.Fleet = fleet
	if len(groups) == 1 {
		return fleet.Services()[0], cleanup, nil
	}
	svc, err := shard.New(fleet.Services(), c.shardOptions()...)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return svc, cleanup, nil
}

// shardOptions maps the config onto the federation layer's options.
func (c *EngineConfig) shardOptions() []shard.Option {
	var opts []shard.Option
	if c.BestEffort {
		opts = append(opts, shard.WithBestEffort())
	}
	return opts
}

// replicaOptions maps the config onto the routing tier's options.
func (c *EngineConfig) replicaOptions() []replica.Option {
	var opts []replica.Option
	switch {
	case c.Hedge > 0:
		opts = append(opts, replica.WithHedgeAfter(c.Hedge))
	case c.Hedge < 0:
		opts = append(opts, replica.WithoutHedging())
	}
	if c.Seed != 0 {
		opts = append(opts, replica.WithSeed(c.Seed))
	}
	return opts
}

// BuildEngine assembles the engine the config describes: demo or CSV
// tables plus a local or remote text service registered as "mercury".
// The returned cleanup closes remote connections and is safe to call
// even on a nil error path exactly once.
func (c *EngineConfig) BuildEngine() (*core.Engine, func(), error) {
	opts := core.DefaultOptions()
	switch c.Mode {
	case "traditional":
		opts.Optimizer.Mode = optimizer.ModeTraditional
	case "prl":
		opts.Optimizer.Mode = optimizer.ModePrL
	case "greedy":
		opts.Optimizer.Mode = optimizer.ModePrLGreedy
	default:
		return nil, nil, fmt.Errorf("unknown mode %q", c.Mode)
	}
	opts.Seed = c.Seed
	opts.SearchCache = c.SearchCache
	opts.ProbeCache = c.ProbeCache
	opts.Optimizer.BatchProbe = c.BatchProbe
	opts.RowEngine = !c.Vectorized

	demo := workload.NewDemo(c.Docs, c.Seed)
	cleanup := func() {}
	var svc texservice.Service
	if c.Remote != "" {
		var err error
		svc, cleanup, err = c.DialText()
		if err != nil {
			return nil, nil, err
		}
	} else if c.Replicas > 1 || c.Partitions > 1 {
		// In-process replicated fleet: each partition served by R
		// interchangeable replicas behind the routing tier (hedged
		// requests, failover), federated when partitioned. With -live
		// each replica is its own mutable delta index and writes
		// broadcast through the tier; a shared -ingest-dir would have
		// the replicas fighting over one WAL, so it is rejected.
		if c.IngestDir != "" {
			return nil, nil, fmt.Errorf("-ingest-dir is not supported with -replicas/-partitions (replicas would share one WAL); use -live for in-memory writes")
		}
		parts, r := c.Partitions, c.Replicas
		if parts < 1 {
			parts = 1
		}
		if r < 1 {
			r = 1
		}
		var fleet *replica.Fleet
		var err error
		svc, fleet, cleanup, err = demo.Corpus.ReplicatedService(parts, r,
			c.LiveIngest, nil, c.replicaOptions(), c.shardOptions()...)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		c.Fleet = fleet
	} else if c.LiveIngest || c.IngestDir != "" {
		// Mutable live-ingest backend: the demo corpus becomes the base
		// snapshot, writes layer over it in a delta (WAL-durable when
		// -ingest-dir is set, in-memory otherwise).
		store, err := ingest.Open(demo.Corpus.Index, ingest.Options{Dir: c.IngestDir})
		if err != nil {
			return nil, nil, fmt.Errorf("opening live-ingest store: %w", err)
		}
		svc = ingest.NewLive(store,
			ingest.WithShortFields("title", "author", "year"))
		cleanup = func() { _ = store.Close() }
	} else {
		local, err := texservice.NewLocal(demo.Corpus.Index,
			texservice.WithShortFields("title", "author", "year"))
		if err != nil {
			return nil, nil, err
		}
		svc = local
	}

	eng := core.NewEngineWith(opts)
	if len(c.Tables) > 0 {
		for _, spec := range c.Tables {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				cleanup()
				return nil, nil, fmt.Errorf("bad -table %q; want name=path.csv", spec)
			}
			tbl, err := relation.LoadCSVFile(strings.ToLower(name), path)
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			if err := eng.RegisterTable(tbl); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
	} else {
		for _, tbl := range demo.Catalog.Tables {
			if err := eng.RegisterTable(tbl); err != nil {
				cleanup()
				return nil, nil, err
			}
		}
	}
	if err := eng.RegisterTextSource("mercury", svc, demo.Corpus.Fields()...); err != nil {
		cleanup()
		return nil, nil, err
	}
	return eng, cleanup, nil
}
