// Package workload generates the synthetic workloads the experiments run
// on: a CSTR-like bibliographic corpus (the paper used CMU Mercury's
// computer-science technical reports) and the CS-department relations
// (student, faculty, project) of the paper's running examples.
//
// The generators are seeded and deterministic, and expose exactly the
// knobs the paper's experiments vary: the predicate selectivities s_i
// (what fraction of a join column's distinct values occur in the text
// field), the fanouts f_i (how many documents a matching value occurs
// in), the relation cardinality N, and the distinct counts N_i.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"textjoin/internal/textidx"
)

// Corpus is a generated document collection with pools of values that are
// known to occur in specific fields, so relations with controlled
// selectivities can be built against it.
type Corpus struct {
	Index *textidx.Index
	// Tags are project-name-like words; each occurs in the title of
	// exactly TagFanout documents.
	Tags []string
	// Authors are author names; each occurs in the author field of
	// exactly AuthorFanout documents (as the primary author).
	Authors []string
	// Topics are the title topic phrases used ('belief update', ...).
	Topics []string
	// Years are the values of the year field.
	Years []string
	// TagFanout and AuthorFanout are the exact per-value fanouts.
	TagFanout, AuthorFanout int
	// Docs is the collection size D.
	Docs int
}

// CorpusConfig controls corpus generation.
type CorpusConfig struct {
	// Docs is the number of documents (default 2000).
	Docs int
	// TagFanout is how many documents each title tag appears in
	// (default 2).
	TagFanout int
	// AuthorFanout is how many documents each author writes (default 2).
	AuthorFanout int
	// Skewed makes author productivity Zipf-like instead of uniform:
	// every author still writes at least one document (so the matching
	// pools stay valid), but beyond that documents concentrate on the
	// low-index authors. Used by the robustness experiments — real
	// bibliographies are skewed, the paper's model assumes averages.
	Skewed bool
	// Seed makes generation deterministic (default 1).
	Seed int64
}

func (c *CorpusConfig) defaults() {
	if c.Docs == 0 {
		c.Docs = 2000
	}
	if c.TagFanout == 0 {
		c.TagFanout = 2
	}
	if c.AuthorFanout == 0 {
		c.AuthorFanout = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Filler vocabulary for abstracts and title padding. "text" appears
// several times so that the word is common in titles: the paper's Q2
// assumes 'text' in mercury.title is not very selective.
var fillerWords = []string{
	"system", "model", "analysis", "method", "design", "data", "structure",
	"performance", "evaluation", "distributed", "parallel", "adaptive",
	"optimal", "efficient", "framework", "approach", "algorithm", "protocol",
	"text", "text", "text", "text", "text", "text",
}

// Topic phrases appearing in titles, with Zipf-like weights: 'belief
// update' is rare (the paper's Q1 notes only a few entries match), the
// tail topics are common.
var topicPhrases = []string{
	"belief update", "text retrieval", "information filtering",
	"query optimization", "knowledge representation", "machine learning",
	"distributed systems", "operating systems",
}

var topicWeights = []int{1, 4, 8, 100, 100, 100, 100, 100}

// pickTopic draws a topic with the Zipf-like weights.
func pickTopic(rng *rand.Rand) string {
	total := 0
	for _, w := range topicWeights {
		total += w
	}
	r := rng.Intn(total)
	for i, w := range topicWeights {
		if r < w {
			return topicPhrases[i]
		}
		r -= w
	}
	return topicPhrases[len(topicPhrases)-1]
}

// NewCorpus builds a bibliographic collection. Every document's title is
// "<tag> <topic> <filler>" and its author field holds one primary author
// (with exact fanout) plus occasionally a coauthor drawn from the same
// pool, which adds realistic variance without destroying the controlled
// primary fanouts.
func NewCorpus(cfg CorpusConfig) *Corpus {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	nTags := cfg.Docs / cfg.TagFanout
	if nTags < 1 {
		nTags = 1
	}
	nAuthors := cfg.Docs / cfg.AuthorFanout
	if cfg.Skewed {
		// A smaller pool leaves 3/4 of the documents to the Zipf-like
		// assignment, so per-author fanouts genuinely vary.
		nAuthors = cfg.Docs / (cfg.AuthorFanout * 4)
	}
	if nAuthors < 1 {
		nAuthors = 1
	}
	c := &Corpus{
		Topics:       topicPhrases,
		Years:        []string{"1992", "1993", "1994", "1995"},
		TagFanout:    cfg.TagFanout,
		AuthorFanout: cfg.AuthorFanout,
		Docs:         cfg.Docs,
	}
	for i := 0; i < nTags; i++ {
		c.Tags = append(c.Tags, fmt.Sprintf("proj%05d", i))
	}
	for i := 0; i < nAuthors; i++ {
		c.Authors = append(c.Authors, fmt.Sprintf("author%05d", i))
	}

	ix := textidx.NewIndex()
	for d := 0; d < cfg.Docs; d++ {
		tag := c.Tags[(d/cfg.TagFanout)%nTags]
		primary := (d / cfg.AuthorFanout) % nAuthors
		if cfg.Skewed && d >= nAuthors*cfg.AuthorFanout {
			// Zipf-like concentration: quadratic bias toward low
			// indexes, after the guaranteed regular assignment (so every
			// author keeps at least AuthorFanout primary documents and
			// the matching pools stay valid). Note the correlated Q3/Q4
			// builders (AuthorForTag/CoauthorOf) assume the regular
			// layout; robustness experiments on skewed corpora use Q1/Q2.
			r := rng.Float64()
			primary = int(r * r * float64(nAuthors))
			if primary >= nAuthors {
				primary = nAuthors - 1
			}
		}
		// Every document is co-authored by the primary author and a
		// deterministic partner (the next author in the pool), so the
		// pair (Authors[i], Authors[i+1]) co-occurs in exactly
		// AuthorFanout documents. Co-authored documents are what the
		// paper's Q4 ("students who co-authored reports with their
		// advisors") joins on.
		coauthor := (primary + 1) % nAuthors
		topic := pickTopic(rng)
		title := tag + " " + topic + " " + fillerWords[rng.Intn(len(fillerWords))]
		authors := c.Authors[primary] + " " + c.Authors[coauthor]
		var abstract strings.Builder
		for w := 0; w < 12; w++ {
			if w > 0 {
				abstract.WriteByte(' ')
			}
			abstract.WriteString(fillerWords[rng.Intn(len(fillerWords))])
		}
		ix.MustAdd(textidx.Document{
			ExtID: fmt.Sprintf("CSTR-%05d", d),
			Fields: map[string]string{
				"title":    title,
				"author":   authors,
				"abstract": abstract.String(),
				"year":     c.Years[d%len(c.Years)],
			},
		})
	}
	ix.Freeze()
	c.Index = ix
	return c
}

// CoauthorOf returns the author that co-occurs with the given pool author
// in the author's primary documents.
func (c *Corpus) CoauthorOf(i int) string {
	return c.Authors[(i+1)%len(c.Authors)]
}

// AuthorForTag returns an author guaranteed to co-occur with the given
// title tag: the primary author of the tag's first document.
func (c *Corpus) AuthorForTag(i int) string {
	doc := i * c.TagFanout // first document carrying Tags[i]
	return c.Authors[(doc/c.AuthorFanout)%len(c.Authors)]
}

// AuthorsOfTopic returns the distinct authors of documents whose title
// contains the topic phrase, in docid order. Used to build relations that
// actually join with topical selections (e.g. Q1's 'belief update').
func (c *Corpus) AuthorsOfTopic(topic string) []string {
	e, err := textidx.MakeExactPred("title", topic)
	if err != nil {
		return nil
	}
	res, err := c.Index.Eval(e)
	if err != nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, id := range res.Docs {
		doc, err := c.Index.Doc(id)
		if err != nil {
			continue
		}
		for _, a := range strings.Fields(doc.Field("author")) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Fields returns the corpus's field names.
func (c *Corpus) Fields() []string { return []string{"title", "author", "abstract", "year"} }
