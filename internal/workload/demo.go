package workload

import (
	"fmt"
	"math/rand"

	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/value"
)

// Demo is a self-contained university database + bibliographic corpus for
// the CLI and the examples: the paper's student / faculty / project
// tables, with join-column values that partially overlap the corpus's
// author and title vocabularies so every example query has answers.
type Demo struct {
	Corpus  *Corpus
	Catalog *sqlparse.Catalog
}

// NewDemo builds the demo environment.
func NewDemo(docs int, seed int64) *Demo {
	c := NewCorpus(CorpusConfig{Docs: docs, Seed: seed})
	rng := rand.New(rand.NewSource(seed + 1))
	areas := []string{"AI", "DB", "OS", "distributed systems"}
	depts := []string{"cs", "ee", "me"}

	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "area", Kind: value.KindString},
		relation.Column{Name: "year", Kind: value.KindInt},
		relation.Column{Name: "advisor", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	faculty := relation.NewTable("faculty", relation.MustSchema(
		relation.Column{Name: "fname", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	project := relation.NewTable("project", relation.MustSchema(
		relation.Column{Name: "pname", Kind: value.KindString},
		relation.Column{Name: "member", Kind: value.KindString},
		relation.Column{Name: "sponsor", Kind: value.KindString},
	))

	// Faculty: 8 advisors, the first 6 drawn from the author pool.
	var advisors []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("prof%02d", i)
		if i < 6 && i < len(c.Authors) {
			name = c.Authors[i]
		}
		advisors = append(advisors, name)
		faculty.MustInsert(relation.Tuple{value.String(name), value.String(depts[i%len(depts)])})
	}
	// Students: 60, a third with publishing names (from the author pool).
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("grad%03d", i)
		if i%3 == 0 && 10+i < len(c.Authors) {
			name = c.Authors[10+i]
		}
		student.MustInsert(relation.Tuple{
			value.String(name),
			value.String(areas[rng.Intn(len(areas))]),
			value.Int(int64(1 + rng.Intn(6))),
			value.String(advisors[rng.Intn(len(advisors))]),
			value.String(depts[rng.Intn(len(depts))]),
		})
	}
	// Projects: 20, half with names from the title tag pool.
	sponsors := []string{"NSF", "DARPA", "industry"}
	for i := 0; i < 20; i++ {
		pname := fmt.Sprintf("internalproj%02d", i)
		if i%2 == 0 && i/2 < len(c.Tags) {
			pname = c.Tags[i/2]
		}
		member := c.Authors[(i*7)%len(c.Authors)]
		project.MustInsert(relation.Tuple{
			value.String(pname),
			value.String(member),
			value.String(sponsors[i%len(sponsors)]),
		})
	}

	return &Demo{
		Corpus: c,
		Catalog: &sqlparse.Catalog{
			Tables: map[string]*relation.Table{
				"student": student, "faculty": faculty, "project": project,
			},
			Text: map[string]*sqlparse.TextSourceInfo{
				"mercury": {Name: "mercury", Fields: c.Fields()},
			},
		},
	}
}
