package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"textjoin/internal/relation"
	"textjoin/internal/sqlparse"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// MultiJoin is a multi-join workload: a catalog of relational tables, a
// text service, and a query in the paper's SQL syntax.
type MultiJoin struct {
	Catalog *sqlparse.Catalog
	Index   *textidx.Index
	Query   string
	// ShortFields configures the text service's short form.
	ShortFields []string
}

// Service builds a fresh metered service for the workload.
func (m *MultiJoin) Service() (*texservice.Local, error) {
	return texservice.NewLocal(m.Index, texservice.WithShortFields(m.ShortFields...))
}

// Q5Config parameterises the paper's Q5 / Example 6.1 workload: students
// and faculty joined on dept inequality and both joined with the text
// source on authorship.
type Q5Config struct {
	Students, Faculty int
	// PubStudents / PubFaculty are how many of each actually publish
	// (controlling the foreign predicates' selectivities).
	PubStudents, PubFaculty int
	Docs                    int
	// AuthorInShortForm controls whether the RTP family is applicable.
	AuthorInShortForm bool
	Seed              int64
}

// DefaultQ5 is the Example 6.1 regime: selective foreign predicates, an
// unselective dept join, and no RTP escape hatch.
func DefaultQ5() Q5Config {
	return Q5Config{
		Students: 400, Faculty: 60,
		PubStudents: 8, PubFaculty: 6,
		Docs: 50, AuthorInShortForm: false, Seed: 61,
	}
}

// Q5 builds the multi-join workload for the paper's Q5.
func Q5(cfg Q5Config) (*MultiJoin, error) {
	if cfg.PubStudents > cfg.Students || cfg.PubFaculty > cfg.Faculty {
		return nil, fmt.Errorf("workload: more publishing members than members")
	}
	if cfg.PubStudents < 1 || cfg.PubFaculty < 1 || cfg.Docs < 1 {
		return nil, fmt.Errorf("workload: Q5 needs publishing members and documents")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	depts := []string{"cs", "ee", "me", "ce"}

	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	faculty := relation.NewTable("faculty", relation.MustSchema(
		relation.Column{Name: "fname", Kind: value.KindString},
		relation.Column{Name: "dept", Kind: value.KindString},
	))
	var pubStudents, pubFaculty []string
	for i := 0; i < cfg.Students; i++ {
		name := fmt.Sprintf("student%04d", i)
		if i < cfg.PubStudents {
			pubStudents = append(pubStudents, name)
		}
		student.MustInsert(relation.Tuple{value.String(name), value.String(depts[rng.Intn(len(depts))])})
	}
	for i := 0; i < cfg.Faculty; i++ {
		name := fmt.Sprintf("prof%03d", i)
		if i < cfg.PubFaculty {
			pubFaculty = append(pubFaculty, name)
		}
		faculty.MustInsert(relation.Tuple{value.String(name), value.String(depts[rng.Intn(len(depts))])})
	}

	ix := textidx.NewIndex()
	for d := 0; d < cfg.Docs; d++ {
		ix.MustAdd(textidx.Document{
			ExtID: fmt.Sprintf("rep%04d", d),
			Fields: map[string]string{
				"title":  "technical report " + fillerWords[rng.Intn(len(fillerWords))],
				"author": pubFaculty[rng.Intn(len(pubFaculty))] + " " + pubStudents[rng.Intn(len(pubStudents))],
				"year":   "1993",
			},
		})
	}
	ix.Freeze()

	short := []string{"title", "year"}
	if cfg.AuthorInShortForm {
		short = append(short, "author")
	}
	return &MultiJoin{
		Catalog: &sqlparse.Catalog{
			Tables: map[string]*relation.Table{"student": student, "faculty": faculty},
			Text: map[string]*sqlparse.TextSourceInfo{
				"mercury": {Name: "mercury", Fields: []string{"title", "author", "year"}},
			},
		},
		Index: ix,
		Query: `select student.name, mercury.docid
			from student, faculty, mercury
			where student.name in mercury.author
			and faculty.fname in mercury.author
			and faculty.dept != student.dept
			and '1993' in mercury.year`,
		ShortFields: short,
	}, nil
}

// ChainConfig parameterises an n-relation chain query used to measure
// optimizer overhead: r0 ⋈ r1 ⋈ … ⋈ r(n−1) on equi-joins, with r0 also
// joined to the text source.
type ChainConfig struct {
	Relations int
	RowsEach  int
	Docs      int
	Seed      int64
}

// Chain builds the chain workload.
func Chain(cfg ChainConfig) (*MultiJoin, error) {
	if cfg.Relations < 1 || cfg.RowsEach < 1 || cfg.Docs < 1 {
		return nil, fmt.Errorf("workload: chain needs relations, rows and documents")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Shared key domain so equi-joins have matches.
	keys := make([]string, cfg.RowsEach)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
	}
	authors := make([]string, 10)
	for i := range authors {
		authors[i] = fmt.Sprintf("chainauthor%02d", i)
	}

	cat := &sqlparse.Catalog{
		Tables: map[string]*relation.Table{},
		Text: map[string]*sqlparse.TextSourceInfo{
			"mercury": {Name: "mercury", Fields: []string{"title", "author", "year"}},
		},
	}
	var fromList, conds []string
	for r := 0; r < cfg.Relations; r++ {
		name := fmt.Sprintf("r%d", r)
		tbl := relation.NewTable(name, relation.MustSchema(
			relation.Column{Name: "id", Kind: value.KindString},
			relation.Column{Name: "link", Kind: value.KindString},
			relation.Column{Name: "name", Kind: value.KindString},
		))
		for i := 0; i < cfg.RowsEach; i++ {
			tbl.MustInsert(relation.Tuple{
				value.String(keys[i]),
				value.String(keys[rng.Intn(len(keys))]),
				value.String(authors[rng.Intn(len(authors))]),
			})
		}
		cat.Tables[name] = tbl
		fromList = append(fromList, name)
		if r > 0 {
			conds = append(conds, fmt.Sprintf("r%d.link = r%d.id", r-1, r))
		}
	}
	fromList = append(fromList, "mercury")
	conds = append(conds, "r0.name in mercury.author")

	ix := textidx.NewIndex()
	for d := 0; d < cfg.Docs; d++ {
		ix.MustAdd(textidx.Document{
			ExtID: fmt.Sprintf("doc%04d", d),
			Fields: map[string]string{
				"title":  "chain workload document",
				"author": authors[rng.Intn(len(authors))],
				"year":   "1994",
			},
		})
	}
	ix.Freeze()

	return &MultiJoin{
		Catalog:     cat,
		Index:       ix,
		Query:       "select r0.id from " + strings.Join(fromList, ", ") + " where " + strings.Join(conds, " and "),
		ShortFields: []string{"title", "author", "year"},
	}, nil
}
