package workload

import (
	"testing"

	"textjoin/internal/join"
	"textjoin/internal/stats"
)

func TestSkewedCorpusShape(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 2000, Seed: 9, Skewed: true})
	// Every pool author still occurs.
	for _, a := range c.Authors {
		if c.Index.DocFrequency("author", a) == 0 {
			t.Fatalf("author %s has no documents on the skewed corpus", a)
		}
	}
	// Productivity genuinely varies: the busiest author has several times
	// the median's documents.
	max, min := 0, 1<<30
	for _, a := range c.Authors {
		df := c.Index.DocFrequency("author", a)
		if df > max {
			max = df
		}
		if df < min {
			min = df
		}
	}
	if max < 4*min {
		t.Fatalf("skew missing: max fanout %d, min %d", max, min)
	}
	// Determinism.
	c2 := NewCorpus(CorpusConfig{Docs: 2000, Seed: 9, Skewed: true})
	if c2.Index.DocFrequency("author", c.Authors[0]) != c.Index.DocFrequency("author", c.Authors[0]) {
		t.Fatal("skewed corpus not deterministic")
	}
}

// TestModelRobustToSkew: on a skewed corpus — where the cost model's
// average fanouts hide high per-author variance — the predicted winner
// between TS and the semi-join still matches the measured winner on Q1
// and Q2 (the builders that are skew-safe).
func TestModelRobustToSkew(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 2000, Seed: 9, Skewed: true})
	scenarios := []*Scenario{}
	q1, err := c.Q1(Q1Config{N: 200, S1: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, q1)
	q2, err := c.Q2(Q2Config{N: 40, S1: 0.5, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	scenarios = append(scenarios, q2)

	for _, sc := range scenarios {
		estSvc, err := sc.Service()
		if err != nil {
			t.Fatal(err)
		}
		est := stats.New(estSvc, stats.WithSampleSize(10000))
		params, err := est.BuildParams(sc.Spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		predWinner, _ := params.Best()
		method, err := stats.InstantiateMethod(sc.Spec, params, predWinner)
		if err != nil {
			t.Fatal(err)
		}

		// Measure the predicted winner and TS; the winner must actually
		// beat TS when predicted to (and the result must stay correct).
		svc1, err := sc.Service()
		if err != nil {
			t.Fatal(err)
		}
		winRes, err := method.Execute(bg, sc.Spec, svc1)
		if err != nil {
			t.Fatalf("%s/%s: %v", sc.Name, method.Name(), err)
		}
		svc2, err := sc.Service()
		if err != nil {
			t.Fatal(err)
		}
		tsRes, err := (join.TS{}).Execute(bg, sc.Spec, svc2)
		if err != nil {
			t.Fatal(err)
		}
		if !join.SameRows(winRes.Table, tsRes.Table) {
			t.Fatalf("%s: winner result differs from TS on skewed corpus", sc.Name)
		}
		if method.Name() != "TS" && winRes.Stats.Usage.Cost >= tsRes.Stats.Usage.Cost {
			t.Errorf("%s: predicted winner %s (%v) does not beat TS (%v) on skewed corpus",
				sc.Name, method.Name(), winRes.Stats.Usage.Cost, tsRes.Stats.Usage.Cost)
		}
		t.Logf("%s (skewed): winner %s %.1fs vs TS %.1fs",
			sc.Name, method.Name(), winRes.Stats.Usage.Cost, tsRes.Stats.Usage.Cost)
	}
}
