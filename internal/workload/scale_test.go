package workload

import (
	"testing"
	"time"

	"textjoin/internal/join"
	"textjoin/internal/stats"
)

// TestScale builds a 50k-document corpus and runs a full method-selection
// + execution cycle, guarding against accidental quadratic behaviour in
// the index, the estimator or the join methods. Skipped under -short.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	start := time.Now()
	c := NewCorpus(CorpusConfig{Docs: 50000, Seed: 77})
	buildTime := time.Since(start)
	if c.Index.NumDocs() != 50000 {
		t.Fatalf("docs = %d", c.Index.NumDocs())
	}
	if buildTime > 30*time.Second {
		t.Fatalf("index build took %s", buildTime)
	}

	sc, err := c.Q2(Q2Config{N: 500, S1: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	estSvc, err := sc.Service()
	if err != nil {
		t.Fatal(err)
	}
	est := stats.New(estSvc, stats.WithSampleSize(100))
	method, _, _, err := est.ChooseMethod(sc.Spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := sc.Service()
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	res, err := method.Execute(bg, sc.Spec, svc)
	if err != nil {
		t.Fatal(err)
	}
	execTime := time.Since(start)
	if execTime > 30*time.Second {
		t.Fatalf("%s on 50k docs took %s", method.Name(), execTime)
	}
	if res.Stats.ResultRows == 0 {
		t.Fatal("scale query returned nothing")
	}
	// Spot-check correctness against TS (cheaper than the naive scan at
	// this size).
	svc2, err := sc.Service()
	if err != nil {
		t.Fatal(err)
	}
	ts, err := (join.TS{Workers: 8}).Execute(bg, sc.Spec, svc2)
	if err != nil {
		t.Fatal(err)
	}
	if !join.SameRows(res.Table, ts.Table) {
		t.Fatalf("%s disagrees with TS at scale", method.Name())
	}
	t.Logf("50k docs: build %s, %s executed in %s, %d rows",
		buildTime, method.Name(), execTime, res.Stats.ResultRows)
}
