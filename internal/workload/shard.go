package workload

import (
	"strings"

	"textjoin/internal/shard"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
)

// Scatter-gather workload: the corpus served by an N-shard federation
// plus fan-out-heavy searches, the scenario the sharded text service is
// built for. Each query matches a sizable slice of the collection, so the
// transmission work dominates and splitting it N ways pays.

// ShardedService partitions the corpus n ways and serves each piece from
// an in-process Local backend with the bibliographic short form, composed
// into one federation. decorate, when non-nil, wraps each shard backend
// before composition (fault injection, retries, latency models) and
// receives the shard index.
func (c *Corpus) ShardedService(n int, decorate func(k int, svc texservice.Service) texservice.Service,
	opts ...shard.Option) (*shard.Sharded, error) {
	return shard.NewLocalCluster(c.Index, n,
		[]texservice.LocalOption{texservice.WithShortFields("title", "author", "year")},
		decorate, opts...)
}

// ScatterQueries returns up to k distinct searches that each match many
// documents: the common topic phrases of the corpus plus the deliberately
// unselective title word "text". These are the searches whose cost is
// transmission-dominated — exactly where a document-sharded fan-out
// approaches an N-fold elapsed-time speedup.
func (c *Corpus) ScatterQueries(k int) []textidx.Expr {
	var out []textidx.Expr
	out = append(out, textidx.Term{Field: "title", Word: "text"})
	for _, topic := range c.Topics {
		words := strings.Fields(topic)
		if len(words) == 1 {
			out = append(out, textidx.Term{Field: "title", Word: words[0]})
			continue
		}
		out = append(out, textidx.Phrase{Field: "title", Words: words})
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
