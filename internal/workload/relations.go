package workload

import (
	"fmt"
	"math/rand"

	"textjoin/internal/relation"
	"textjoin/internal/value"
)

// ColumnSpec controls one generated join column.
type ColumnSpec struct {
	// Name of the column.
	Name string
	// Distinct is N_i: how many distinct values the column takes.
	Distinct int
	// MatchFrac is s_i: the fraction of the distinct values drawn from
	// the matching pool (values known to occur in the target text field).
	MatchFrac float64
	// Pool is the matching value pool (e.g. corpus.Authors).
	Pool []string
}

// BuildRelation generates a relation with n rows and the given join
// columns. For each column, Distinct values are materialised —
// round(MatchFrac·Distinct) of them sampled from the pool without
// replacement, the rest synthetic non-matching values — and rows cycle
// through them, so each distinct value occurs about n/Distinct times and
// the realised selectivity equals MatchFrac up to rounding.
func BuildRelation(name string, n int, seed int64, cols ...ColumnSpec) (*relation.Table, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: relation needs at least one row")
	}
	rng := rand.New(rand.NewSource(seed))
	schemaCols := make([]relation.Column, len(cols))
	domains := make([][]string, len(cols))
	for i, c := range cols {
		if c.Distinct < 1 || c.Distinct > n {
			return nil, fmt.Errorf("workload: column %s distinct %d out of [1,%d]", c.Name, c.Distinct, n)
		}
		if c.MatchFrac < 0 || c.MatchFrac > 1 {
			return nil, fmt.Errorf("workload: column %s match fraction %v out of [0,1]", c.Name, c.MatchFrac)
		}
		nMatch := int(c.MatchFrac*float64(c.Distinct) + 0.5)
		if nMatch > len(c.Pool) {
			return nil, fmt.Errorf("workload: column %s needs %d matching values, pool has %d",
				c.Name, nMatch, len(c.Pool))
		}
		domain := make([]string, 0, c.Distinct)
		perm := rng.Perm(len(c.Pool))
		for j := 0; j < nMatch; j++ {
			domain = append(domain, c.Pool[perm[j]])
		}
		for j := nMatch; j < c.Distinct; j++ {
			domain = append(domain, fmt.Sprintf("nomatch%s%05d", c.Name, j))
		}
		// Shuffle so matching and non-matching values interleave.
		rng.Shuffle(len(domain), func(a, b int) { domain[a], domain[b] = domain[b], domain[a] })
		domains[i] = domain
		schemaCols[i] = relation.Column{Name: c.Name, Kind: value.KindString}
	}
	tbl := relation.NewTable(name, relation.MustSchema(schemaCols...))
	for r := 0; r < n; r++ {
		row := make(relation.Tuple, len(cols))
		for i := range cols {
			// Plain cycling keeps each column's distinct count exact and
			// makes the number of distinct combinations the lcm of the
			// per-column counts (capped by n); the per-column domain
			// shuffles above decorrelate the values themselves.
			row[i] = value.String(domains[i][r%len(domains[i])])
		}
		tbl.MustInsert(row)
	}
	return tbl, nil
}

// MustBuildRelation is BuildRelation that panics on error.
func MustBuildRelation(name string, n int, seed int64, cols ...ColumnSpec) *relation.Table {
	t, err := BuildRelation(name, n, seed, cols...)
	if err != nil {
		panic(err)
	}
	return t
}
