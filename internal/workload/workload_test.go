package workload

import (
	"math"
	"testing"

	"textjoin/internal/join"
	"textjoin/internal/stats"
	"textjoin/internal/textidx"
)

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus(CorpusConfig{Docs: 200, Seed: 7})
	b := NewCorpus(CorpusConfig{Docs: 200, Seed: 7})
	if a.Index.NumDocs() != b.Index.NumDocs() {
		t.Fatal("corpus size differs")
	}
	for i := 0; i < a.Index.NumDocs(); i++ {
		da, _ := a.Index.Doc(textidx.DocID(i))
		db, _ := b.Index.Doc(textidx.DocID(i))
		if da.Fields["title"] != db.Fields["title"] || da.Fields["author"] != db.Fields["author"] {
			t.Fatalf("doc %d differs between equal seeds", i)
		}
	}
	c := NewCorpus(CorpusConfig{Docs: 200, Seed: 8})
	diff := false
	for i := 0; i < a.Index.NumDocs(); i++ {
		da, _ := a.Index.Doc(textidx.DocID(i))
		dc, _ := c.Index.Doc(textidx.DocID(i))
		if da.Fields["title"] != dc.Fields["title"] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusFanoutsExact(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 400, TagFanout: 4, AuthorFanout: 2, Seed: 1})
	if len(c.Tags) != 100 || len(c.Authors) != 200 {
		t.Fatalf("pools: %d tags, %d authors", len(c.Tags), len(c.Authors))
	}
	for _, tag := range c.Tags[:10] {
		if df := c.Index.DocFrequency("title", tag); df != 4 {
			t.Fatalf("tag %s fanout %d, want 4", tag, df)
		}
	}
	// Every author appears in AuthorFanout documents as the primary
	// author and AuthorFanout as the deterministic co-author.
	for _, a := range c.Authors[:10] {
		if df := c.Index.DocFrequency("author", a); df != 4 {
			t.Fatalf("author %s fanout %d, want 4", a, df)
		}
	}
}

func TestCorpusTopicSkew(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 4000, Seed: 3})
	// 'belief update' must be rare; use the phrase's first word doc
	// frequency as an upper bound proxy.
	rare := c.Index.DocFrequency("title", "belief")
	common := c.Index.DocFrequency("title", "distributed")
	if rare == 0 {
		t.Fatal("'belief update' never appears; Q1 would be degenerate")
	}
	if rare*5 > common {
		t.Fatalf("topic skew missing: belief=%d distributed=%d", rare, common)
	}
	// 'text' must be common (Q2's unselective selection).
	if df := c.Index.DocFrequency("title", "text"); df < c.Docs/10 {
		t.Fatalf("'text' in only %d of %d titles", df, c.Docs)
	}
}

func TestBuildRelationSelectivityRealised(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 2000, Seed: 1})
	rel, err := BuildRelation("r", 100, 5, ColumnSpec{
		Name: "name", Distinct: 50, MatchFrac: 0.4, Pool: c.Authors,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 100 {
		t.Fatalf("rows = %d", rel.Cardinality())
	}
	d, err := rel.DistinctCount("name")
	if err != nil || d != 50 {
		t.Fatalf("distinct = %d, %v", d, err)
	}
	// Measure realised selectivity with the estimator at full sampling.
	svc, err := (&Scenario{Corpus: c}).Service()
	if err != nil {
		t.Fatal(err)
	}
	est := stats.New(svc, stats.WithSampleSize(1000))
	e, err := est.Predicate(rel, "name", "author")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Sel-0.4) > 0.001 {
		t.Fatalf("realised selectivity %v, want 0.4", e.Sel)
	}
	// Primary + co-author occurrences: 2 × AuthorFanout.
	if math.Abs(e.CondFanout-2*float64(c.AuthorFanout)) > 0.001 {
		t.Fatalf("conditional fanout %v, want %d", e.CondFanout, 2*c.AuthorFanout)
	}
}

func TestBuildRelationErrors(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 100, Seed: 1})
	cases := []struct {
		n    int
		cols []ColumnSpec
	}{
		{0, []ColumnSpec{{Name: "a", Distinct: 1, Pool: c.Authors}}},
		{10, []ColumnSpec{{Name: "a", Distinct: 0, Pool: c.Authors}}},
		{10, []ColumnSpec{{Name: "a", Distinct: 11, Pool: c.Authors}}},
		{10, []ColumnSpec{{Name: "a", Distinct: 5, MatchFrac: 1.5, Pool: c.Authors}}},
		{10, []ColumnSpec{{Name: "a", Distinct: 5, MatchFrac: 1, Pool: c.Authors[:2]}}},
	}
	for i, cse := range cases {
		if _, err := BuildRelation("r", cse.n, 1, cse.cols...); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestScenariosRunnable(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 500, Seed: 2})
	scenarios, err := PaperOperatingPoints(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	for _, s := range scenarios {
		if err := s.Spec.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		svc, err := s.Service()
		if err != nil {
			t.Fatal(err)
		}
		// TS must execute and agree with the naive join on every scenario.
		res, err := (join.TS{}).Execute(bg, s.Spec, svc)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		want, err := join.NaiveJoin(s.Spec, c.Index)
		if err != nil {
			t.Fatal(err)
		}
		if !join.SameRows(res.Table, want) {
			t.Fatalf("%s: TS differs from naive", s.Name)
		}
	}
}

func TestScenarioByName(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 300, Seed: 2})
	s, err := ScenarioByName(c, "Q3")
	if err != nil || s.Name != "Q3" {
		t.Fatalf("ScenarioByName: %v, %v", s, err)
	}
	if _, err := ScenarioByName(c, "Q9"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestQ1HasSelectiveSelectionAndResults(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 2000, Seed: 2})
	s, err := c.Q1(Q1Config{N: 50, S1: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := s.Service()
	if err != nil {
		t.Fatal(err)
	}
	est := stats.New(svc, stats.WithSampleSize(1000))
	st, err := est.Selection(s.Spec.TextSel)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fanout == 0 || st.Fanout > float64(c.Docs)/50 {
		t.Fatalf("Q1 selection fanout %v not selective", st.Fanout)
	}
}

func TestFieldsAccessor(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 10, Seed: 1})
	if len(c.Fields()) != 4 {
		t.Fatalf("fields = %v", c.Fields())
	}
}
