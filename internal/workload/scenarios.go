package workload

import (
	"fmt"

	"textjoin/internal/join"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

// Scenario bundles a ready-to-run foreign join: the corpus, the (already
// relationally selected) joining relation, and the join spec. It mirrors
// one of the paper's example queries Q1–Q4 at a chosen operating point.
type Scenario struct {
	Name   string
	Corpus *Corpus
	Spec   *join.Spec
}

// Service wraps the scenario's corpus as a fresh local text service with
// the bibliographic short form (title, author, year) and its own meter.
func (s *Scenario) Service() (*texservice.Local, error) {
	return texservice.NewLocal(s.Corpus.Index,
		texservice.WithShortFields("title", "author", "year"))
}

// Q1Config parameterises the paper's Q1: senior AI students joined with
// documents whose title contains 'belief update', on name in author.
type Q1Config struct {
	// N is the number of (selected) student tuples.
	N int
	// S1 is the selectivity of name in author.
	S1   float64
	Seed int64
}

// Q1 builds the Q1 scenario (select *: long forms needed). The matching
// names include the authors of 'belief update' documents, so the query
// has answers: some senior AI students actually wrote about belief
// update.
func (c *Corpus) Q1(cfg Q1Config) (*Scenario, error) {
	if cfg.N < 1 || cfg.S1 < 0 || cfg.S1 > 1 {
		return nil, fmt.Errorf("workload: Q1 needs N ≥ 1 and S1 in [0,1]")
	}
	nMatch := int(cfg.S1*float64(cfg.N) + 0.5)
	topical := c.AuthorsOfTopic("belief update")
	inTopical := map[string]bool{}
	for _, a := range topical {
		inTopical[a] = true
	}
	schema := relation.MustSchema(relation.Column{Name: "name", Kind: value.KindString})
	rel := relation.NewTable("student", schema)
	general := 0
	for r := 0; r < cfg.N; r++ {
		name := fmt.Sprintf("nomatchstudent%04d", r)
		switch {
		case r < nMatch && r < len(topical):
			name = topical[r]
		case r < nMatch:
			// Fill the rest of the matching quota with non-topical
			// authors.
			for general < len(c.Authors) && inTopical[c.Authors[general]] {
				general++
			}
			if general < len(c.Authors) {
				name = c.Authors[general]
				general++
			}
		}
		rel.MustInsert(relation.Tuple{value.String(name)})
	}
	return &Scenario{
		Name:   "Q1",
		Corpus: c,
		Spec: &join.Spec{
			Relation:  rel,
			Preds:     []join.Pred{{Column: "name", Field: "author"}},
			TextSel:   textidx.Phrase{Field: "title", Words: []string{"belief", "update"}},
			LongForm:  true,
			DocFields: []string{"title", "author"},
		},
	}, nil
}

// Q2Config parameterises the paper's Q2: the docids of reports with
// 'text' in the title written by Garcia's students — a semi-join query.
type Q2Config struct {
	// N is the number of students (of one advisor).
	N int
	// S1 is the selectivity of name in author.
	S1   float64
	Seed int64
}

// Q2 builds the Q2 scenario (docid only: no long forms).
func (c *Corpus) Q2(cfg Q2Config) (*Scenario, error) {
	rel, err := BuildRelation("student", cfg.N, cfg.Seed, ColumnSpec{
		Name: "name", Distinct: cfg.N, MatchFrac: cfg.S1, Pool: c.Authors,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:   "Q2",
		Corpus: c,
		Spec: &join.Spec{
			Relation: rel,
			Preds:    []join.Pred{{Column: "name", Field: "author"}},
			TextSel:  textidx.Term{Field: "title", Word: "text"},
			LongForm: false,
		},
	}, nil
}

// Q3Config parameterises the paper's Q3: NSF projects joined with reports
// that have the project name in the title and a member among the authors.
// The paper's operating point is N=100, s1=0.16.
type Q3Config struct {
	// N is the number of project tuples.
	N int
	// N1 is the number of distinct project names.
	N1 int
	// S1 is the selectivity of name in title.
	S1 float64
	// N2 is the number of distinct members.
	N2 int
	// S2 is the selectivity of member in author.
	S2   float64
	Seed int64
}

// Q3 builds the Q3 scenario (docid output: no long forms, matching the
// paper's select list). The member column is correlated with the name
// column: a member that publishes does so on reports of the project it
// belongs to, so the joint predicate has matches (the fully correlated
// regime). N2 is treated as approximate; the realised distinct count is
// close to it for the operating points used.
func (c *Corpus) Q3(cfg Q3Config) (*Scenario, error) {
	if cfg.N < 1 || cfg.N1 < 1 || cfg.N1 > cfg.N {
		return nil, fmt.Errorf("workload: Q3 needs 1 ≤ N1 ≤ N")
	}
	for _, s := range []float64{cfg.S1, cfg.S2} {
		if s < 0 || s > 1 {
			return nil, fmt.Errorf("workload: Q3 selectivities out of [0,1]")
		}
	}
	// Project names: N1 distinct, a fraction S1 drawn from the tag pool.
	nMatchNames := int(cfg.S1*float64(cfg.N1) + 0.5)
	if nMatchNames > len(c.Tags) {
		return nil, fmt.Errorf("workload: Q3 needs %d matching tags, pool has %d", nMatchNames, len(c.Tags))
	}
	names := make([]string, cfg.N1)
	tagIdx := make([]int, cfg.N1) // -1 when non-matching
	for i := 0; i < cfg.N1; i++ {
		if i < nMatchNames {
			names[i] = c.Tags[i]
			tagIdx[i] = i
		} else {
			names[i] = fmt.Sprintf("nomatchproj%04d", i)
			tagIdx[i] = -1
		}
	}
	// Members: a fraction S2 of the rows get a member occurring in the
	// author field — and when the row's project name matches a tag, that
	// member is specifically an author of the tag's reports, so the
	// joint predicate matches (full correlation).
	nMatchMembers := int(cfg.S2*float64(cfg.N) + 0.5)
	schema := relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "member", Kind: value.KindString},
	)
	rel := relation.NewTable("project", schema)
	for r := 0; r < cfg.N; r++ {
		ni := r % cfg.N1
		member := fmt.Sprintf("nomatchmember%04d", r)
		if r < nMatchMembers {
			if ti := tagIdx[ni]; ti >= 0 {
				member = c.AuthorForTag(ti)
			} else {
				member = c.Authors[(len(c.Authors)/2+r)%len(c.Authors)]
			}
		}
		rel.MustInsert(relation.Tuple{value.String(names[ni]), value.String(member)})
	}
	return &Scenario{
		Name:   "Q3",
		Corpus: c,
		Spec: &join.Spec{
			Relation: rel,
			Preds: []join.Pred{
				{Column: "name", Field: "title"},
				{Column: "member", Field: "author"},
			},
			LongForm: false,
		},
	}, nil
}

// Q4Config parameterises the paper's Q4: students who co-authored reports
// with their advisors. The advisor column has N1 distinct values with
// selectivity 1 (advisors are prolific); few student names appear.
type Q4Config struct {
	// N is the number of student tuples.
	N int
	// N1 is the number of distinct advisors.
	N1 int
	// S1 is the selectivity of advisor in author (the paper fixes it at 1).
	S1 float64
	// S2 is the selectivity of name in author.
	S2   float64
	Seed int64
}

// Q4 builds the Q4 scenario (select *: long forms needed). The relation
// is built with the correlation the query is about: the fraction S2 of
// students whose name appears in the literature appear specifically as
// co-authors of their own advisor, so the joint predicate actually
// matches — the fully correlated regime the paper's cost model assumes.
func (c *Corpus) Q4(cfg Q4Config) (*Scenario, error) {
	if cfg.N < 1 || cfg.N1 < 1 || cfg.N1 > cfg.N {
		return nil, fmt.Errorf("workload: Q4 needs 1 ≤ N1 ≤ N")
	}
	if cfg.S1 < 0 || cfg.S1 > 1 || cfg.S2 < 0 || cfg.S2 > 1 {
		return nil, fmt.Errorf("workload: Q4 selectivities out of [0,1]")
	}
	// Advisors: N1 distinct; a fraction S1 are publishing authors (drawn
	// from even pool positions so their co-author partners are distinct
	// from other advisors).
	nMatchAdv := int(cfg.S1*float64(cfg.N1) + 0.5)
	if 2*cfg.N1 > len(c.Authors) {
		return nil, fmt.Errorf("workload: Q4 needs %d advisors, author pool has %d", 2*cfg.N1, len(c.Authors))
	}
	advisors := make([]string, cfg.N1)
	partners := make([]string, cfg.N1)
	for i := 0; i < cfg.N1; i++ {
		if i < nMatchAdv {
			advisors[i] = c.Authors[2*i]
			partners[i] = c.CoauthorOf(2 * i)
		} else {
			advisors[i] = fmt.Sprintf("nomatchadvisor%04d", i)
			partners[i] = ""
		}
	}
	// Students: each row's advisor cycles; a fraction S2 of the rows get
	// the name that co-authors with that advisor, the rest non-matching
	// names.
	nMatchName := int(cfg.S2*float64(cfg.N) + 0.5)
	rel := relationNew("student")
	for r := 0; r < cfg.N; r++ {
		adv := advisors[r%cfg.N1]
		name := fmt.Sprintf("nomatchstudent%04d", r)
		if r < nMatchName && partners[r%cfg.N1] != "" {
			name = partners[r%cfg.N1]
		}
		relMustInsert(rel, adv, name)
	}
	return &Scenario{
		Name:   "Q4",
		Corpus: c,
		Spec: &join.Spec{
			Relation: rel,
			Preds: []join.Pred{
				{Column: "advisor", Field: "author"},
				{Column: "name", Field: "author"},
			},
			LongForm:  true,
			DocFields: []string{"title", "author"},
		},
	}, nil
}

// relationNew builds the Q4 student relation shell.
func relationNew(name string) *relation.Table {
	return relation.NewTable(name, relation.MustSchema(
		relation.Column{Name: "advisor", Kind: value.KindString},
		relation.Column{Name: "name", Kind: value.KindString},
	))
}

// relMustInsert appends one (advisor, name) row.
func relMustInsert(t *relation.Table, advisor, name string) {
	t.MustInsert(relation.Tuple{value.String(advisor), value.String(name)})
}

// PaperOperatingPoints returns the four scenarios at the parameter
// settings used for Table 2, against the given corpus.
func PaperOperatingPoints(c *Corpus) ([]*Scenario, error) {
	var out []*Scenario
	q1, err := c.Q1(Q1Config{N: 200, S1: 0.3, Seed: 11})
	if err != nil {
		return nil, err
	}
	out = append(out, q1)
	q2, err := c.Q2(Q2Config{N: 40, S1: 0.5, Seed: 12})
	if err != nil {
		return nil, err
	}
	out = append(out, q2)
	q3, err := c.Q3(Q3Config{N: 100, N1: 25, S1: 0.16, N2: 100, S2: 0.3, Seed: 13})
	if err != nil {
		return nil, err
	}
	out = append(out, q3)
	q4, err := c.Q4(Q4Config{N: 60, N1: 6, S1: 1.0, S2: 0.1, Seed: 14})
	if err != nil {
		return nil, err
	}
	out = append(out, q4)
	return out, nil
}

// ScenarioByName builds one of the paper scenarios by name ("Q1".."Q4").
func ScenarioByName(c *Corpus, name string) (*Scenario, error) {
	all, err := PaperOperatingPoints(c)
	if err != nil {
		return nil, err
	}
	for _, s := range all {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown scenario %q", name)
}
