package workload

import (
	"textjoin/internal/ingest"
	"textjoin/internal/replica"
	"textjoin/internal/shard"
	"textjoin/internal/texservice"
)

// Replicated fleet workload: the corpus partitioned P ways with each
// partition served by R interchangeable replicas behind the load-aware
// routing tier — the deployment shape the hedging and failover
// experiments exercise.

// ReplicatedService partitions the corpus into partitions pieces and
// serves each piece from r in-process replicas composed into a routing
// Set (internal/replica); with more than one partition the Sets are
// federated by shard.New, so the full stack reads
// shard → replica routing → backend. When live is true each replica is
// a mutable live-ingest index (in-memory WAL-less delta over the
// partition base), so replicated write broadcasts work end to end.
//
// decorate, when non-nil, wraps each replica backend before composition
// (fault injection, brownouts, latency models) and receives the
// partition and replica indices. setOpts configure every routing Set
// (seeds are perturbed per partition by NewFleet); shardOpts configure
// the federation when partitions > 1.
//
// The returned cleanup releases the live stores and is safe to call
// once even when err is non-nil.
func (c *Corpus) ReplicatedService(partitions, r int, live bool,
	decorate func(part, rep int, svc texservice.Service) texservice.Service,
	setOpts []replica.Option, shardOpts ...shard.Option) (texservice.Service, *replica.Fleet, func(), error) {
	parts, err := c.Index.Partition(partitions)
	if err != nil {
		return nil, nil, func() {}, err
	}
	var stores []*ingest.Store
	cleanup := func() {
		for _, st := range stores {
			_ = st.Close()
		}
	}
	groups := make([][]texservice.Service, partitions)
	for p, part := range parts {
		groups[p] = make([]texservice.Service, r)
		for k := 0; k < r; k++ {
			var svc texservice.Service
			if live {
				// Each store must know its partition: the shard layer
				// broadcasts every op batch to all partitions and relies
				// on the hash-owner rule to dedup — without ShardCount
				// every partition would insert every put.
				store, err := ingest.Open(part, ingest.Options{
					ShardIndex: p, ShardCount: partitions})
				if err != nil {
					cleanup()
					return nil, nil, func() {}, err
				}
				stores = append(stores, store)
				svc = ingest.NewLive(store,
					ingest.WithShortFields("title", "author", "year"))
			} else {
				local, err := texservice.NewLocal(part,
					texservice.WithShortFields("title", "author", "year"))
				if err != nil {
					cleanup()
					return nil, nil, func() {}, err
				}
				svc = local
			}
			if decorate != nil {
				svc = decorate(p, k, svc)
			}
			groups[p][k] = svc
		}
	}
	fleet, err := replica.NewFleet(groups, setOpts...)
	if err != nil {
		cleanup()
		return nil, nil, func() {}, err
	}
	if partitions == 1 {
		return fleet.Services()[0], fleet, cleanup, nil
	}
	federated, err := shard.New(fleet.Services(), shardOpts...)
	if err != nil {
		cleanup()
		return nil, nil, func() {}, err
	}
	return federated, fleet, cleanup, nil
}
