package workload

import (
	"strings"
	"testing"

	"textjoin/internal/sqlparse"
)

func TestQ5WorkloadValid(t *testing.T) {
	w, err := Q5(DefaultQ5())
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse(w.Query)
	if err != nil {
		t.Fatalf("Q5 query does not parse: %v", err)
	}
	a, err := sqlparse.Analyze(q, w.Catalog)
	if err != nil {
		t.Fatalf("Q5 query does not analyze: %v", err)
	}
	if len(a.Tables) != 2 || a.SingleSource() != "mercury" || len(a.Foreign) != 2 {
		t.Fatalf("Q5 classification: %+v", a)
	}
	svc, err := w.Service()
	if err != nil {
		t.Fatal(err)
	}
	// The default regime keeps author out of the short form.
	for _, f := range svc.ShortFields() {
		if f == "author" {
			t.Fatal("author must not be in the default Q5 short form")
		}
	}
	// Opt-in variant includes it.
	cfg := DefaultQ5()
	cfg.AuthorInShortForm = true
	w2, err := Q5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(w2.ShortFields, ","), "author") {
		t.Fatal("AuthorInShortForm not honoured")
	}
}

func TestQ5ConfigValidation(t *testing.T) {
	bad := []Q5Config{
		{Students: 2, Faculty: 2, PubStudents: 3, PubFaculty: 1, Docs: 5},
		{Students: 2, Faculty: 2, PubStudents: 1, PubFaculty: 3, Docs: 5},
		{Students: 2, Faculty: 2, PubStudents: 0, PubFaculty: 1, Docs: 5},
		{Students: 2, Faculty: 2, PubStudents: 1, PubFaculty: 1, Docs: 0},
	}
	for i, cfg := range bad {
		if _, err := Q5(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestChainWorkload(t *testing.T) {
	w, err := Chain(ChainConfig{Relations: 4, RowsEach: 10, Docs: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Catalog.Tables) != 4 {
		t.Fatalf("tables = %d", len(w.Catalog.Tables))
	}
	q, err := sqlparse.Parse(w.Query)
	if err != nil {
		t.Fatalf("chain query does not parse: %v", err)
	}
	a, err := sqlparse.Analyze(q, w.Catalog)
	if err != nil {
		t.Fatalf("chain query does not analyze: %v", err)
	}
	if len(a.Edges) != 3 {
		t.Fatalf("edges = %d, want 3", len(a.Edges))
	}
	if _, err := w.Service(); err != nil {
		t.Fatal(err)
	}
}

func TestChainConfigValidation(t *testing.T) {
	bad := []ChainConfig{
		{Relations: 0, RowsEach: 5, Docs: 5},
		{Relations: 2, RowsEach: 0, Docs: 5},
		{Relations: 2, RowsEach: 5, Docs: 0},
	}
	for i, cfg := range bad {
		if _, err := Chain(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDemoEnvironment(t *testing.T) {
	demo := NewDemo(300, 4)
	if len(demo.Catalog.Tables) != 3 {
		t.Fatalf("demo tables = %d", len(demo.Catalog.Tables))
	}
	for _, name := range []string{"student", "faculty", "project"} {
		tbl, ok := demo.Catalog.Tables[name]
		if !ok || tbl.Cardinality() == 0 {
			t.Fatalf("demo table %q missing or empty", name)
		}
	}
	if demo.Catalog.Text["mercury"] == nil {
		t.Fatal("demo text source missing")
	}
	if demo.Corpus.Index.NumDocs() != 300 {
		t.Fatalf("demo corpus = %d docs", demo.Corpus.Index.NumDocs())
	}
	// Some students and some projects join with the corpus.
	students, err := demo.Catalog.Tables["student"].Column("name")
	if err != nil {
		t.Fatal(err)
	}
	matching := 0
	for _, s := range students {
		if demo.Corpus.Index.DocFrequency("author", s.Text()) > 0 {
			matching++
		}
	}
	if matching == 0 {
		t.Fatal("no demo student publishes; example queries would be empty")
	}
}

func TestMustBuildRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuildRelation did not panic on bad config")
		}
	}()
	MustBuildRelation("r", 0, 1)
}

func TestQ4ConfigValidation(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 100, Seed: 1})
	bad := []Q4Config{
		{N: 0, N1: 1},
		{N: 5, N1: 0},
		{N: 5, N1: 6},
		{N: 5, N1: 2, S1: 1.5},
		{N: 5, N1: 2, S1: 1, S2: -0.5},
	}
	for i, cfg := range bad {
		if _, err := c.Q4(cfg); err == nil {
			t.Errorf("Q4 config %d accepted", i)
		}
	}
	// Q4 needing more advisors than the pool has.
	tiny := NewCorpus(CorpusConfig{Docs: 4, Seed: 1})
	if _, err := tiny.Q4(Q4Config{N: 10, N1: 10, S1: 1, S2: 0.5}); err == nil {
		t.Error("pool overflow accepted")
	}
}

func TestQ1Q3ConfigValidation(t *testing.T) {
	c := NewCorpus(CorpusConfig{Docs: 100, Seed: 1})
	if _, err := c.Q1(Q1Config{N: 0}); err == nil {
		t.Error("Q1 N=0 accepted")
	}
	if _, err := c.Q1(Q1Config{N: 5, S1: 2}); err == nil {
		t.Error("Q1 S1=2 accepted")
	}
	if _, err := c.Q3(Q3Config{N: 0, N1: 1}); err == nil {
		t.Error("Q3 N=0 accepted")
	}
	if _, err := c.Q3(Q3Config{N: 5, N1: 2, S1: -1}); err == nil {
		t.Error("Q3 S1<0 accepted")
	}
	if _, err := c.Q3(Q3Config{N: 500, N1: 500, S1: 1, N2: 10, S2: 0}); err == nil {
		t.Error("Q3 tag pool overflow accepted")
	}
}
