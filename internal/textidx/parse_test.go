package textidx

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	e, err := Parse("TI='belief update' and AU='radhika'", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	want := And{
		Phrase{Field: "title", Words: []string{"belief", "update"}},
		Term{Field: "author", Word: "radhika"},
	}
	if !reflect.DeepEqual(e, Expr(want)) {
		t.Fatalf("parsed %#v", e)
	}
}

func TestParseSemiJoinShape(t *testing.T) {
	// The paper's Example 3.3 semi-join query.
	e, err := Parse("TI=text and (AU=Gravano or AU=Kao)", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(And)
	if !ok || len(and) != 2 {
		t.Fatalf("expected 2-ary And, got %#v", e)
	}
	or, ok := and[1].(Or)
	if !ok || len(or) != 2 {
		t.Fatalf("expected 2-ary Or, got %#v", and[1])
	}
	if or[0].(Term).Word != "gravano" && or[0].(Term).Word != "Gravano" {
		t.Fatalf("or[0] = %#v", or[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or.
	e, err := Parse("a='x' or b='y' and c='z'", nil)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok || len(or) != 2 {
		t.Fatalf("top is %#v", e)
	}
	if _, ok := or[1].(And); !ok {
		t.Fatalf("right of or is %#v", or[1])
	}
}

func TestParseParensAndNot(t *testing.T) {
	e, err := Parse("not (a='x' or a='y')", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := e.(Not)
	if !ok {
		t.Fatalf("top is %#v", e)
	}
	if _, ok := n.E.(Or); !ok {
		t.Fatalf("inner is %#v", n.E)
	}
}

func TestParseUnscopedAndPrefix(t *testing.T) {
	e, err := Parse("'information filtering'", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := e.(Phrase)
	if !ok || p.Field != "" {
		t.Fatalf("unscoped phrase → %#v", e)
	}
	e, err = Parse("AU='filter?'", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	if pre, ok := e.(Prefix); !ok || pre.Field != "author" || pre.Stem != "filter" {
		t.Fatalf("truncation → %#v", e)
	}
}

func TestParseNear(t *testing.T) {
	e, err := Parse("'information' near10 'filtering'", nil)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := e.(Near)
	if !ok || n.Dist != 10 || n.A != "information" || n.B != "filtering" {
		t.Fatalf("near → %#v", e)
	}
	// Field-scoped proximity takes the left operand's field.
	e, err = Parse("TI='information' near5 'filtering'", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.(Near); n.Field != "title" || n.Dist != 5 {
		t.Fatalf("scoped near → %#v", e)
	}
	// "near" with no digits means distance 1.
	e, err = Parse("'a' near 'b'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.(Near); n.Dist != 1 {
		t.Fatalf("bare near → %#v", e)
	}
}

func TestParseNearErrors(t *testing.T) {
	if _, err := Parse("'a b' near3 'c'", nil); err == nil {
		t.Fatal("phrase operand to near accepted")
	}
	if _, err := Parse("TI='a' near3 AU='b'", MercuryAliases); err == nil {
		t.Fatal("cross-field near accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"TI=",
		"TI'x'",
		"(a='x'",
		"a='x' b='y'",
		"'unterminated",
		"a='x' and",
		"and a='x'",
		"a='x' @",
		"()",
	}
	for _, q := range bad {
		if _, err := Parse(q, nil); err == nil {
			t.Errorf("Parse(%q) succeeded", q)
		}
	}
}

func TestParseIdentStartingWithNear(t *testing.T) {
	// An identifier like "nearby" must lex as an identifier, not a
	// proximity operator.
	e, err := Parse("nearby='update'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if term, ok := e.(Term); !ok || term.Field != "nearby" {
		t.Fatalf("nearby → %#v", e)
	}
}

func TestParseAliasResolution(t *testing.T) {
	e, err := Parse("ti='x'", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	if e.(Term).Field != "title" {
		t.Fatalf("lower-case alias not resolved: %#v", e)
	}
	e, err = Parse("unknownfield='x'", MercuryAliases)
	if err != nil {
		t.Fatal(err)
	}
	if e.(Term).Field != "unknownfield" {
		t.Fatalf("unaliased field renamed: %#v", e)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	queries := []string{
		"TI='belief update' and (AU='gravano' or AU='kao')",
		"not AU='smith' and TI='filter?'",
		"'information' near10 'filtering'",
		"a='x' or (b='y' and not c='z')",
	}
	for _, q := range queries {
		e1, err := Parse(q, MercuryAliases)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		e2, err := Parse(e1.String(), nil)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e1.String(), err)
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Errorf("round trip changed %q:\n  first : %#v\n  second: %#v", q, e1, e2)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := And{
		Phrase{Field: "title", Words: []string{"belief", "update"}},
		Or{Term{Field: "author", Word: "kao"}, Not{E: Prefix{Field: "author", Stem: "gr"}}},
		Near{Field: "title", A: "x", B: "y", Dist: 4},
	}
	s := e.String()
	for _, want := range []string{"title='belief update'", "author='kao'", "not author='gr?'", "near4"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
	unscoped := Near{A: "x", B: "y", Dist: 2}
	if unscoped.String() != "'x' near2 'y'" {
		t.Errorf("unscoped near rendering = %q", unscoped.String())
	}
}
