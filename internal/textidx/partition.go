package textidx

import "fmt"

// Corpus partitioning for the document-sharded text service: a frozen
// index can be split into n disjoint shard indexes, each holding the
// documents whose global docid hashes to that shard. Docids are dense
// (the i-th added document has DocID i), so the modulo hash is a perfect
// hash partition and — crucially — invertible by pure arithmetic:
//
//	shard(g)  = g mod n      (the partitioning invariant)
//	local(g)  = g div n      (dense per-shard docids, order-preserving)
//	global    = local*n + shard
//
// Because local docids grow monotonically with global docids within each
// shard, every shard's sorted search results map back to globally sorted
// results, and a k-way merge reconstructs exactly the single-index
// ordering. The shard layer (internal/shard) relies on these three
// equations; they are the whole contract between a sharded federation
// and the single-server ground truth.

// ShardOf returns the owning shard of a global docid under an n-way
// partition.
func ShardOf(g DocID, n int) int { return int(g) % n }

// LocalID returns the docid of a global document within its owning shard.
func LocalID(g DocID, n int) DocID { return g / DocID(n) }

// GlobalID reconstructs the global docid of shard-local document `local`
// on shard `shard` of an n-way partition.
func GlobalID(shard int, local DocID, n int) DocID {
	return local*DocID(n) + DocID(shard)
}

// Partition splits a frozen index into n shard indexes following the
// partitioning invariant above. Shard k receives documents k, k+n, k+2n,
// … in global order, re-indexed with dense local docids; every shard is
// returned frozen. Partition re-tokenizes each document, so the shard
// posting lists are exactly what indexing the shard's documents alone
// would build.
func (ix *Index) Partition(n int) ([]*Index, error) {
	if !ix.frozen {
		return nil, fmt.Errorf("textidx: Partition requires a frozen index")
	}
	if n < 1 {
		return nil, fmt.Errorf("textidx: cannot partition into %d shards", n)
	}
	shards := make([]*Index, n)
	for k := range shards {
		shards[k] = NewIndex()
	}
	for g, doc := range ix.docs {
		if _, err := shards[ShardOf(DocID(g), n)].Add(doc); err != nil {
			return nil, err
		}
	}
	for _, s := range shards {
		s.Freeze()
	}
	return shards, nil
}

// SplitSnapshotFile loads a full-corpus snapshot, partitions it n ways,
// and writes one snapshot per shard to fmt.Sprintf(pattern, k). It lets
// shard servers start without re-indexing: split once, then serve each
// piece with `textserve -snapshot`.
func SplitSnapshotFile(src string, n int, pattern string) error {
	ix, err := LoadFile(src)
	if err != nil {
		return err
	}
	shards, err := ix.Partition(n)
	if err != nil {
		return err
	}
	for k, s := range shards {
		if err := s.SaveFile(fmt.Sprintf(pattern, k)); err != nil {
			return err
		}
	}
	return nil
}
