package textidx

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a Boolean search expression in the syntax of the paper's
// examples, e.g.:
//
//	TI='belief update' and (AU='gravano' or AU='kao')
//	'information' near10 'filtering' and not AU='smith'
//	TI='filter?'
//
// aliases maps field abbreviations (e.g. "TI") to indexed field names
// (e.g. "title"); unaliased identifiers are used verbatim. Pass nil for no
// aliasing. A quoted string without a field applies to any field.
func Parse(query string, aliases map[string]string) (Expr, error) {
	toks, err := lexSearch(query)
	if err != nil {
		return nil, err
	}
	p := &searchParser{toks: toks, aliases: aliases}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("textidx: unexpected %q at end of search", p.peek().text)
	}
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

type searchTokKind uint8

const (
	tokEOF searchTokKind = iota
	tokIdent
	tokString
	tokEq
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokNear // carries dist
)

type searchTok struct {
	kind searchTokKind
	text string
	dist int // for tokNear
}

func lexSearch(s string) ([]searchTok, error) {
	var toks []searchTok
	i := 0
	for i < len(s) {
		r := rune(s[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, searchTok{kind: tokLParen, text: "("})
			i++
		case r == ')':
			toks = append(toks, searchTok{kind: tokRParen, text: ")"})
			i++
		case r == '=':
			toks = append(toks, searchTok{kind: tokEq, text: "="})
			i++
		case r == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("textidx: unterminated string starting at %d", i)
			}
			toks = append(toks, searchTok{kind: tokString, text: s[i+1 : j]})
			i = j + 1
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(s) && (isWordByte(s[j]) || s[j] == '?') {
				j++
			}
			word := s[i:j]
			lower := strings.ToLower(word)
			switch {
			case lower == "and":
				toks = append(toks, searchTok{kind: tokAnd, text: word})
			case lower == "or":
				toks = append(toks, searchTok{kind: tokOr, text: word})
			case lower == "not":
				toks = append(toks, searchTok{kind: tokNot, text: word})
			case strings.HasPrefix(lower, "near"):
				dist := 1
				if rest := lower[len("near"):]; rest != "" {
					d, err := strconv.Atoi(rest)
					if err != nil {
						toks = append(toks, searchTok{kind: tokIdent, text: word})
						i = j
						continue
					}
					dist = d
				}
				toks = append(toks, searchTok{kind: tokNear, text: word, dist: dist})
			default:
				toks = append(toks, searchTok{kind: tokIdent, text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("textidx: unexpected character %q at %d", r, i)
		}
	}
	toks = append(toks, searchTok{kind: tokEOF})
	return toks, nil
}

func isWordByte(b byte) bool {
	return b == '_' || ('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || ('0' <= b && b <= '9')
}

type searchParser struct {
	toks    []searchTok
	pos     int
	aliases map[string]string
}

func (p *searchParser) peek() searchTok { return p.toks[p.pos] }

func (p *searchParser) next() searchTok {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *searchParser) atEnd() bool { return p.peek().kind == tokEOF }

func (p *searchParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []Expr{left}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return Or(parts), nil
}

func (p *searchParser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []Expr{left}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, right)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return And(parts), nil
}

func (p *searchParser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{E: sub}, nil
	case tokLParen:
		p.next()
		sub, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("textidx: expected ')', got %q", p.peek().text)
		}
		p.next()
		return sub, nil
	default:
		return p.parseAtom()
	}
}

// parseAtom parses a predicate optionally followed by a proximity operator.
func (p *searchParser) parseAtom() (Expr, error) {
	left, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokNear {
		return left, nil
	}
	nearTok := p.next()
	right, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	lt, lok := left.(Term)
	rt, rok := right.(Term)
	if !lok || !rok {
		return nil, fmt.Errorf("textidx: proximity requires single-word operands")
	}
	field := lt.Field
	if field == "" {
		field = rt.Field
	} else if rt.Field != "" && rt.Field != field {
		return nil, fmt.Errorf("textidx: proximity operands must be in the same field")
	}
	return Near{Field: field, A: lt.Word, B: rt.Word, Dist: nearTok.dist}, nil
}

// parsePred parses [field =] 'text'.
func (p *searchParser) parsePred() (Expr, error) {
	field := ""
	if p.peek().kind == tokIdent {
		ident := p.next().text
		if p.peek().kind != tokEq {
			return nil, fmt.Errorf("textidx: expected '=' after field %q", ident)
		}
		p.next()
		field = p.resolveField(ident)
	}
	switch p.peek().kind {
	case tokString:
		return MakePred(field, p.next().text)
	case tokIdent:
		// Unquoted single word, e.g. TI=text (used in the paper's Example 3.3).
		return MakePred(field, p.next().text)
	default:
		return nil, fmt.Errorf("textidx: expected search term, got %q", p.peek().text)
	}
}

func (p *searchParser) resolveField(ident string) string {
	if p.aliases != nil {
		if f, ok := p.aliases[ident]; ok {
			return f
		}
		if f, ok := p.aliases[strings.ToUpper(ident)]; ok {
			return f
		}
	}
	return strings.ToLower(ident)
}

// MercuryAliases is the field alias map of the paper's examples, matching
// the bibliographic CSTR schema.
var MercuryAliases = map[string]string{
	"TI": "title",
	"AU": "author",
	"AB": "abstract",
	"YR": "year",
}
