package textidx

import (
	"fmt"
	"strings"
)

// Expr is a Boolean search expression. The empty field name "" means
// "any field": the term may occur in any indexed field (the paper's
// unscoped searches such as 'information filtering').
type Expr interface {
	// TermCount is the number of basic search terms in the expression,
	// which text systems bound (the paper's M; Mercury allowed 70).
	TermCount() int
	// String renders the expression in the search syntax accepted by Parse.
	String() string
}

// Term matches documents whose field contains the single word (after
// tokenization).
type Term struct {
	Field string
	Word  string
}

// TermCount implements Expr.
func (t Term) TermCount() int { return 1 }

func (t Term) String() string { return renderPred(t.Field, t.Word) }

// Phrase matches documents whose field contains the words adjacently, in
// order.
type Phrase struct {
	Field string
	Words []string
}

// TermCount implements Expr. A phrase of w words costs w basic terms, since
// each word's inverted list must be retrieved.
func (p Phrase) TermCount() int { return len(p.Words) }

func (p Phrase) String() string { return renderPred(p.Field, strings.Join(p.Words, " ")) }

// Prefix matches documents whose field contains any word starting with
// Stem (the paper's truncated search 'filter?').
type Prefix struct {
	Field string
	Stem  string
}

// TermCount implements Expr.
func (p Prefix) TermCount() int { return 1 }

func (p Prefix) String() string { return renderPred(p.Field, p.Stem+"?") }

// Near matches documents whose field contains words A and B within Dist
// token positions of each other (the paper's 'information near10
// filtering').
type Near struct {
	Field string
	A, B  string
	Dist  int
}

// TermCount implements Expr.
func (n Near) TermCount() int { return 2 }

func (n Near) String() string {
	if n.Field == "" {
		return fmt.Sprintf("'%s' near%d '%s'", n.A, n.Dist, n.B)
	}
	return fmt.Sprintf("%s='%s' near%d '%s'", n.Field, n.A, n.Dist, n.B)
}

// And is the conjunction of its children (at least one).
type And []Expr

// TermCount implements Expr.
func (a And) TermCount() int {
	n := 0
	for _, e := range a {
		n += e.TermCount()
	}
	return n
}

func (a And) String() string { return renderNary(a, " and ") }

// Or is the disjunction of its children (at least one).
type Or []Expr

// TermCount implements Expr.
func (o Or) TermCount() int {
	n := 0
	for _, e := range o {
		n += e.TermCount()
	}
	return n
}

func (o Or) String() string { return renderNary(o, " or ") }

// Not matches the complement of its child.
type Not struct{ E Expr }

// TermCount implements Expr.
func (n Not) TermCount() int { return n.E.TermCount() }

func (n Not) String() string { return "not " + parenthesize(n.E) }

func renderNary(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = parenthesize(e)
	}
	return strings.Join(parts, sep)
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case And, Or:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

func renderPred(field, text string) string {
	if field == "" {
		return "'" + text + "'"
	}
	return field + "='" + text + "'"
}

// MatchesDoc evaluates the expression against a single document by direct
// tokenization, without the index. It is the semantics oracle: index search
// must return exactly the documents for which MatchesDoc is true.
func MatchesDoc(e Expr, d Document) bool {
	switch e := e.(type) {
	case Term:
		return anyField(e.Field, d, func(text string) bool {
			return TermOccursIn(e.Word, text)
		})
	case Phrase:
		return anyField(e.Field, d, func(text string) bool {
			return TermOccursIn(strings.Join(e.Words, " "), text)
		})
	case Prefix:
		stem := normalizeToken(e.Stem)
		return anyField(e.Field, d, func(text string) bool {
			for _, tok := range Tokenize(text) {
				if strings.HasPrefix(tok, stem) {
					return true
				}
			}
			return false
		})
	case Near:
		a, b := normalizeToken(e.A), normalizeToken(e.B)
		return anyField(e.Field, d, func(text string) bool {
			toks := Tokenize(text)
			var posA, posB []int
			for i, t := range toks {
				if t == a {
					posA = append(posA, i)
				}
				if t == b {
					posB = append(posB, i)
				}
			}
			for _, pa := range posA {
				for _, pb := range posB {
					diff := pa - pb
					if diff < 0 {
						diff = -diff
					}
					if diff != 0 && diff <= e.Dist {
						return true
					}
				}
			}
			return false
		})
	case And:
		for _, sub := range e {
			if !MatchesDoc(sub, d) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range e {
			if MatchesDoc(sub, d) {
				return true
			}
		}
		return false
	case Not:
		return !MatchesDoc(e.E, d)
	default:
		return false
	}
}

func anyField(field string, d Document, f func(string) bool) bool {
	if field != "" {
		return f(d.Field(field))
	}
	for _, text := range d.Fields {
		if f(text) {
			return true
		}
	}
	return false
}

// Validate checks the expression for structural errors (empty connectives,
// empty terms, negative proximity distance).
func Validate(e Expr) error {
	switch e := e.(type) {
	case Term:
		if normalizeToken(e.Word) == "" {
			return fmt.Errorf("textidx: empty term")
		}
	case Phrase:
		if len(e.Words) == 0 {
			return fmt.Errorf("textidx: empty phrase")
		}
		for _, w := range e.Words {
			if normalizeToken(w) == "" {
				return fmt.Errorf("textidx: empty word in phrase")
			}
		}
	case Prefix:
		if normalizeToken(e.Stem) == "" {
			return fmt.Errorf("textidx: empty prefix stem")
		}
	case Near:
		if e.Dist <= 0 {
			return fmt.Errorf("textidx: near distance must be positive")
		}
		if normalizeToken(e.A) == "" || normalizeToken(e.B) == "" {
			return fmt.Errorf("textidx: empty proximity operand")
		}
	case And:
		if len(e) == 0 {
			return fmt.Errorf("textidx: empty conjunction")
		}
		for _, sub := range e {
			if err := Validate(sub); err != nil {
				return err
			}
		}
	case Or:
		if len(e) == 0 {
			return fmt.Errorf("textidx: empty disjunction")
		}
		for _, sub := range e {
			if err := Validate(sub); err != nil {
				return err
			}
		}
	case Not:
		return Validate(e.E)
	case nil:
		return fmt.Errorf("textidx: nil expression")
	default:
		return fmt.Errorf("textidx: unknown expression type %T", e)
	}
	return nil
}

// MakePred builds the appropriate predicate expression for user-written
// search text: a Term for a single word, a Phrase for several words, or a
// Prefix when the single word ends in '?' (truncation).
func MakePred(field, text string) (Expr, error) {
	trimmed := strings.TrimSpace(text)
	if strings.HasSuffix(trimmed, "?") {
		words := Tokenize(strings.TrimSuffix(trimmed, "?"))
		if len(words) == 1 {
			return Prefix{Field: field, Stem: words[0]}, nil
		}
	}
	return MakeExactPred(field, text)
}

// MakeExactPred builds a Term or Phrase with no truncation. It is the
// substitution constructor used by the join methods when a relational
// value is instantiated into a search: its semantics coincide exactly with
// TermOccursIn, so text-system evaluation and SQL-side string matching
// agree.
func MakeExactPred(field, text string) (Expr, error) {
	words := Tokenize(text)
	switch len(words) {
	case 0:
		return nil, fmt.Errorf("textidx: no searchable words in %q", text)
	case 1:
		return Term{Field: field, Word: words[0]}, nil
	default:
		return Phrase{Field: field, Words: words}, nil
	}
}
