package textidx_test

import (
	"fmt"
	"log"

	"textjoin/internal/textidx"
)

// Example demonstrates the Boolean retrieval engine: index documents,
// freeze, and search with the paper's query syntax.
func Example() {
	ix := textidx.NewIndex()
	ix.MustAdd(textidx.Document{ExtID: "d1", Fields: map[string]string{
		"title": "Information Filtering Systems", "author": "smith"}})
	ix.MustAdd(textidx.Document{ExtID: "d2", Fields: map[string]string{
		"title": "Information Retrieval", "author": "jones"}})
	ix.MustAdd(textidx.Document{ExtID: "d3", Fields: map[string]string{
		"title": "Filtering Streams of Information", "author": "smith lee"}})
	ix.Freeze()

	// The paper's example search: a phrase plus a field-scoped term.
	expr, err := textidx.Parse("'information' near3 'filtering' and AU='smith'", textidx.MercuryAliases)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ix.Eval(expr)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range res.Docs {
		doc, _ := ix.Doc(id)
		fmt.Println(doc.ExtID, "-", doc.Field("title"))
	}
	fmt.Println("postings processed:", res.Postings)
	// Output:
	// d1 - Information Filtering Systems
	// d3 - Filtering Streams of Information
	// postings processed: 7
}

// ExampleParse shows truncation and Boolean connectives.
func ExampleParse() {
	expr, err := textidx.Parse("TI='filter?' and not AU='jones'", textidx.MercuryAliases)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expr)
	fmt.Println("terms:", expr.TermCount())
	// Output:
	// title='filter?' and not author='jones'
	// terms: 2
}
