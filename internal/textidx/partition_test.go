package textidx

import (
	"fmt"
	"path/filepath"
	"testing"
)

func partitionFixture(t testing.TB, docs int) *Index {
	t.Helper()
	ix := NewIndex()
	for i := 0; i < docs; i++ {
		ix.MustAdd(Document{
			ExtID: fmt.Sprintf("d%d", i),
			Fields: map[string]string{
				"title": fmt.Sprintf("document number %d about text", i),
				"tag":   fmt.Sprintf("tag%d", i%3),
			},
		})
	}
	ix.Freeze()
	return ix
}

func TestPartitionArithmetic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		seen := map[DocID]bool{}
		for g := DocID(0); g < 64; g++ {
			k := ShardOf(g, n)
			if k < 0 || k >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", g, n, k)
			}
			l := LocalID(g, n)
			if back := GlobalID(k, l, n); back != g {
				t.Fatalf("roundtrip n=%d: g=%d → (%d,%d) → %d", n, g, k, l, back)
			}
			if seen[g] {
				t.Fatalf("docid %d mapped twice", g)
			}
			seen[g] = true
		}
		// Local ids are dense per shard: documents k, k+n, k+2n… get
		// local ids 0, 1, 2…
		for k := 0; k < n; k++ {
			for i := 0; i < 10; i++ {
				g := DocID(i*n + k)
				if LocalID(g, n) != DocID(i) {
					t.Fatalf("n=%d shard %d doc %d: local id %d, want %d",
						n, k, g, LocalID(g, n), i)
				}
			}
		}
	}
}

func TestPartitionSplitsCorpus(t *testing.T) {
	const docs = 25
	ix := partitionFixture(t, docs)
	for _, n := range []int{1, 2, 4, 7} {
		parts, err := ix.Partition(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d shards", n, len(parts))
		}
		total := 0
		for k, part := range parts {
			total += part.NumDocs()
			// Every local document is the corresponding global document.
			for l := 0; l < part.NumDocs(); l++ {
				got, err := part.Doc(DocID(l))
				if err != nil {
					t.Fatal(err)
				}
				want, err := ix.Doc(GlobalID(k, DocID(l), n))
				if err != nil {
					t.Fatal(err)
				}
				if got.ExtID != want.ExtID {
					t.Fatalf("n=%d shard %d local %d: %s, want %s",
						n, k, l, got.ExtID, want.ExtID)
				}
			}
		}
		if total != docs {
			t.Fatalf("n=%d: shards hold %d docs, want %d", n, total, docs)
		}
		// Posting lists are rebuilt per shard: document frequencies sum
		// to the unsharded frequency.
		for _, term := range []string{"text", "tag0", "tag1", "nosuchterm"} {
			field := "title"
			if term != "text" && term != "nosuchterm" {
				field = "tag"
			}
			sum := 0
			for _, part := range parts {
				sum += part.DocFrequency(field, term)
			}
			if want := ix.DocFrequency(field, term); sum != want {
				t.Fatalf("n=%d df(%s.%s): shards sum %d, want %d", n, field, term, sum, want)
			}
		}
	}
}

func TestPartitionSearchUnion(t *testing.T) {
	ix := partitionFixture(t, 30)
	const n = 3
	parts, err := ix.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	q := Term{Field: "tag", Word: "tag1"}
	want, err := ix.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	var merged []DocID
	for k, part := range parts {
		res, err := part.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range res.Docs {
			merged = append(merged, GlobalID(k, l, n))
		}
	}
	if len(merged) != len(want.Docs) {
		t.Fatalf("union has %d docs, want %d", len(merged), len(want.Docs))
	}
	got := map[DocID]bool{}
	for _, g := range merged {
		got[g] = true
	}
	for _, g := range want.Docs {
		if !got[g] {
			t.Fatalf("doc %d missing from the union", g)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd(Document{ExtID: "a", Fields: map[string]string{"title": "x"}})
	if _, err := ix.Partition(2); err == nil {
		t.Fatal("unfrozen index partitioned")
	}
	ix.Freeze()
	if _, err := ix.Partition(0); err == nil {
		t.Fatal("0-way partition accepted")
	}
}

func TestSplitSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	ix := partitionFixture(t, 20)
	src := filepath.Join(dir, "full.snap")
	if err := ix.SaveFile(src); err != nil {
		t.Fatal(err)
	}
	pattern := filepath.Join(dir, "shard-%d.snap")
	const n = 4
	if err := SplitSnapshotFile(src, n, pattern); err != nil {
		t.Fatal(err)
	}
	total := 0
	for k := 0; k < n; k++ {
		part, err := LoadFile(fmt.Sprintf(pattern, k))
		if err != nil {
			t.Fatal(err)
		}
		total += part.NumDocs()
		if part.NumDocs() != 5 {
			t.Fatalf("shard %d holds %d docs, want 5", k, part.NumDocs())
		}
	}
	if total != 20 {
		t.Fatalf("shards hold %d docs", total)
	}
	if err := SplitSnapshotFile(filepath.Join(dir, "missing.snap"), 2, pattern); err == nil {
		t.Fatal("missing source accepted")
	}
}
