package textidx

import (
	"reflect"
	"testing"
)

func sampleIndex(t *testing.T) *Index {
	t.Helper()
	ix := NewIndex()
	docs := []Document{
		{ExtID: "d0", Fields: map[string]string{
			"title":    "Belief Update and Revision",
			"author":   "Radhika Kumar",
			"abstract": "We study belief update in knowledge bases.",
		}},
		{ExtID: "d1", Fields: map[string]string{
			"title":    "Information Filtering Systems",
			"author":   "Gravano Garcia",
			"abstract": "Filtering of information streams for text retrieval.",
		}},
		{ExtID: "d2", Fields: map[string]string{
			"title":    "Text Retrieval with Inverted Indexes",
			"author":   "Kao",
			"abstract": "Inverted indexes make Boolean text search fast.",
		}},
		{ExtID: "d3", Fields: map[string]string{
			"title":    "Update Propagation in Distributed Systems",
			"author":   "Garcia Molina",
			"abstract": "Distributed update protocols and information flow.",
		}},
	}
	for _, d := range docs {
		ix.MustAdd(d)
	}
	ix.Freeze()
	return ix
}

func ids(t *testing.T, ix *Index, e Expr) []DocID {
	t.Helper()
	res, err := ix.Eval(e)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return res.Docs
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Belief Update", []string{"belief", "update"}},
		{"  hello,  world! ", []string{"hello", "world"}},
		{"", nil},
		{"---", nil},
		{"foo-bar_baz", []string{"foo", "bar", "baz"}},
		{"IPv6 2020", []string{"ipv6", "2020"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTermOccursIn(t *testing.T) {
	cases := []struct {
		term, text string
		want       bool
	}{
		{"belief", "Belief Update and Revision", true},
		{"BELIEF", "belief update", true},
		{"belie", "belief update", false}, // whole-token, not substring
		{"belief update", "on Belief Update today", true},
		{"update belief", "on Belief Update today", false}, // order matters
		{"", "anything", false},
		{"a b", "a c b", false}, // adjacency matters
	}
	for _, c := range cases {
		if got := TermOccursIn(c.term, c.text); got != c.want {
			t.Errorf("TermOccursIn(%q, %q) = %v, want %v", c.term, c.text, got, c.want)
		}
	}
}

func TestAddAfterFreezeFails(t *testing.T) {
	ix := NewIndex()
	ix.Freeze()
	if _, err := ix.Add(Document{}); err == nil {
		t.Fatal("Add after Freeze accepted")
	}
	if !ix.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
}

func TestEvalRequiresFrozen(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd(Document{Fields: map[string]string{"title": "x"}})
	if _, err := ix.Eval(Term{Field: "title", Word: "x"}); err == nil {
		t.Fatal("Eval on unfrozen index accepted")
	}
}

func TestDocAccess(t *testing.T) {
	ix := sampleIndex(t)
	d, err := ix.Doc(1)
	if err != nil || d.ExtID != "d1" {
		t.Fatalf("Doc(1) = %v, %v", d, err)
	}
	if _, err := ix.Doc(-1); err == nil {
		t.Fatal("negative DocID accepted")
	}
	if _, err := ix.Doc(DocID(ix.NumDocs())); err == nil {
		t.Fatal("out-of-range DocID accepted")
	}
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
}

func TestTermSearch(t *testing.T) {
	ix := sampleIndex(t)
	got := ids(t, ix, Term{Field: "title", Word: "update"})
	if !reflect.DeepEqual(got, []DocID{0, 3}) {
		t.Fatalf("title=update → %v", got)
	}
	// Case-insensitive at both index and search time.
	got = ids(t, ix, Term{Field: "title", Word: "UPDATE"})
	if !reflect.DeepEqual(got, []DocID{0, 3}) {
		t.Fatalf("title=UPDATE → %v", got)
	}
	// Unscoped search hits any field.
	got = ids(t, ix, Term{Word: "garcia"})
	if !reflect.DeepEqual(got, []DocID{1, 3}) {
		t.Fatalf("any=garcia → %v", got)
	}
	// Missing term → empty.
	if got := ids(t, ix, Term{Field: "title", Word: "zebra"}); len(got) != 0 {
		t.Fatalf("title=zebra → %v", got)
	}
	// Missing field → empty.
	if got := ids(t, ix, Term{Field: "nosuch", Word: "update"}); len(got) != 0 {
		t.Fatalf("nosuch=update → %v", got)
	}
}

func TestPhraseSearch(t *testing.T) {
	ix := sampleIndex(t)
	got := ids(t, ix, Phrase{Field: "title", Words: []string{"belief", "update"}})
	if !reflect.DeepEqual(got, []DocID{0}) {
		t.Fatalf("phrase 'belief update' → %v", got)
	}
	// Reversed order must not match.
	if got := ids(t, ix, Phrase{Field: "title", Words: []string{"update", "belief"}}); len(got) != 0 {
		t.Fatalf("phrase 'update belief' → %v", got)
	}
	// Both words present but not adjacent.
	ix2 := NewIndex()
	ix2.MustAdd(Document{Fields: map[string]string{"t": "belief in rapid update"}})
	ix2.Freeze()
	if got, _ := ix2.Eval(Phrase{Field: "t", Words: []string{"belief", "update"}}); len(got.Docs) != 0 {
		t.Fatalf("non-adjacent phrase matched: %v", got.Docs)
	}
	// Three-word phrase.
	got = ids(t, ix, Phrase{Field: "abstract", Words: []string{"boolean", "text", "search"}})
	if !reflect.DeepEqual(got, []DocID{2}) {
		t.Fatalf("3-word phrase → %v", got)
	}
}

func TestPrefixSearch(t *testing.T) {
	ix := sampleIndex(t)
	got := ids(t, ix, Prefix{Field: "abstract", Stem: "filter"})
	if !reflect.DeepEqual(got, []DocID{1}) {
		t.Fatalf("abstract=filter? → %v", got)
	}
	got = ids(t, ix, Prefix{Field: "title", Stem: "in"})
	// "information" (d1), "inverted" (d2), "in" (d3)
	if !reflect.DeepEqual(got, []DocID{1, 2, 3}) {
		t.Fatalf("title=in? → %v", got)
	}
}

func TestNearSearch(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd(Document{Fields: map[string]string{"t": "information retrieval and filtering"}}) // dist 3
	ix.MustAdd(Document{Fields: map[string]string{"t": "information filtering"}})               // dist 1
	ix.MustAdd(Document{Fields: map[string]string{"t": "filtering the flood of online information"}})
	ix.MustAdd(Document{Fields: map[string]string{"t": "information only"}})
	ix.Freeze()

	res, err := ix.Eval(Near{Field: "t", A: "information", B: "filtering", Dist: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Docs, []DocID{1}) {
		t.Fatalf("near1 → %v", res.Docs)
	}
	res, err = ix.Eval(Near{Field: "t", A: "information", B: "filtering", Dist: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Docs, []DocID{0, 1, 2}) {
		t.Fatalf("near5 → %v", res.Docs)
	}
}

func TestBooleanConnectives(t *testing.T) {
	ix := sampleIndex(t)
	and := And{
		Term{Field: "title", Word: "update"},
		Term{Field: "author", Word: "garcia"},
	}
	if got := ids(t, ix, and); !reflect.DeepEqual(got, []DocID{3}) {
		t.Fatalf("and → %v", got)
	}
	or := Or{
		Term{Field: "author", Word: "kao"},
		Term{Field: "author", Word: "kumar"},
	}
	if got := ids(t, ix, or); !reflect.DeepEqual(got, []DocID{0, 2}) {
		t.Fatalf("or → %v", got)
	}
	not := And{
		Term{Field: "title", Word: "update"},
		Not{E: Term{Field: "author", Word: "garcia"}},
	}
	if got := ids(t, ix, not); !reflect.DeepEqual(got, []DocID{0}) {
		t.Fatalf("and-not → %v", got)
	}
}

func TestPostingsAccounting(t *testing.T) {
	ix := sampleIndex(t)
	// "update" appears in titles of d0 and d3 → list length 2.
	res, err := ix.Eval(Term{Field: "title", Word: "update"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Postings != 2 {
		t.Fatalf("postings for title=update = %d, want 2", res.Postings)
	}
	// Conjunction charges both lists.
	res, err = ix.Eval(And{
		Term{Field: "title", Word: "update"},  // 2 postings
		Term{Field: "author", Word: "garcia"}, // 2 postings
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Postings != 4 {
		t.Fatalf("postings for conjunction = %d, want 4", res.Postings)
	}
	// NOT charges a pass over the universe.
	res, err = ix.Eval(Not{E: Term{Field: "title", Word: "update"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Postings != 2+ix.NumDocs() {
		t.Fatalf("postings for not = %d, want %d", res.Postings, 2+ix.NumDocs())
	}
}

func TestDocFrequencyAndVocabulary(t *testing.T) {
	ix := sampleIndex(t)
	if df := ix.DocFrequency("title", "update"); df != 2 {
		t.Fatalf("DocFrequency(title, update) = %d", df)
	}
	if df := ix.DocFrequency("title", "UPDATE"); df != 2 {
		t.Fatalf("DocFrequency is case-sensitive")
	}
	if df := ix.DocFrequency("title", "zebra"); df != 0 {
		t.Fatalf("DocFrequency for absent term = %d", df)
	}
	if df := ix.DocFrequency("nosuch", "update"); df != 0 {
		t.Fatalf("DocFrequency for absent field = %d", df)
	}
	if vs := ix.VocabularySize("nosuch"); vs != 0 {
		t.Fatalf("VocabularySize for absent field = %d", vs)
	}
	// radhika, kumar, gravano, garcia, kao, molina
	if vs := ix.VocabularySize("author"); vs != 6 {
		t.Fatalf("VocabularySize(author) = %d, want 6", vs)
	}
	fields := ix.FieldNames()
	if !reflect.DeepEqual(fields, []string{"abstract", "author", "title"}) {
		t.Fatalf("FieldNames = %v", fields)
	}
}

func TestValidate(t *testing.T) {
	bad := []Expr{
		nil,
		Term{Field: "t", Word: "  "},
		Phrase{Field: "t"},
		Phrase{Field: "t", Words: []string{"a", " "}},
		Prefix{Field: "t", Stem: ""},
		Near{Field: "t", A: "a", B: "b", Dist: 0},
		Near{Field: "t", A: "", B: "b", Dist: 2},
		And{},
		Or{},
		And{Term{Field: "t", Word: ""}},
		Or{Term{Field: "t", Word: ""}},
		Not{E: Term{Field: "t", Word: ""}},
	}
	for _, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("Validate accepted %#v", e)
		}
	}
	good := And{
		Term{Field: "t", Word: "a"},
		Or{Phrase{Field: "t", Words: []string{"b", "c"}}, Prefix{Field: "t", Stem: "d"}},
		Not{E: Near{Field: "t", A: "x", B: "y", Dist: 3}},
	}
	if err := Validate(good); err != nil {
		t.Errorf("Validate rejected valid expr: %v", err)
	}
}

func TestTermCount(t *testing.T) {
	e := And{
		Phrase{Field: "title", Words: []string{"belief", "update"}}, // 2
		Or{
			Term{Field: "author", Word: "a"},          // 1
			Prefix{Field: "author", Stem: "b"},        // 1
			Near{Field: "t", A: "x", B: "y", Dist: 2}, // 2
		},
		Not{E: Term{Field: "t", Word: "z"}}, // 1
	}
	if got := e.TermCount(); got != 7 {
		t.Fatalf("TermCount = %d, want 7", got)
	}
}

func TestMakePred(t *testing.T) {
	e, err := MakePred("title", "belief")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(Term); !ok {
		t.Fatalf("single word → %T", e)
	}
	e, err = MakePred("title", "belief update")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := e.(Phrase); !ok || len(p.Words) != 2 {
		t.Fatalf("two words → %#v", e)
	}
	e, err = MakePred("title", "filter?")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := e.(Prefix); !ok || p.Stem != "filter" {
		t.Fatalf("truncated word → %#v", e)
	}
	if _, err := MakePred("title", " ?!"); err == nil {
		t.Fatal("unsearchable text accepted")
	}
}
