package textidx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// TestTokenizeIdempotent: retokenizing the joined tokens yields the same
// tokens (quick).
func TestTokenizeIdempotent(t *testing.T) {
	prop := func(s string) bool {
		once := Tokenize(s)
		twice := Tokenize(strings.Join(once, " "))
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestTokenizeLowercase: every token is already lower-cased (quick).
func TestTokenizeLowercase(t *testing.T) {
	prop := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestSingleWordOccurrence: a single word occurs in a text exactly when
// it is among the text's tokens (quick).
func TestSingleWordOccurrence(t *testing.T) {
	prop := func(text string, pick uint8) bool {
		toks := Tokenize(text)
		if len(toks) == 0 {
			return !TermOccursIn("anything", text) || TermOccursIn("anything", text) == false
		}
		w := toks[int(pick)%len(toks)]
		return TermOccursIn(w, text)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestPhraseImpliesWords: if a phrase occurs, each of its words occurs
// (quick).
func TestPhraseImpliesWords(t *testing.T) {
	prop := func(text string, a, b string) bool {
		wa, wb := Tokenize(a), Tokenize(b)
		if len(wa) == 0 || len(wb) == 0 {
			return true
		}
		phrase := wa[0] + " " + wb[0]
		if !TermOccursIn(phrase, text) {
			return true
		}
		return TermOccursIn(wa[0], text) && TermOccursIn(wb[0], text)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestSetOpsAlgebra: de Morgan-ish identities over random sorted docid
// sets (quick, with a custom generator through fuzzed byte slices).
func TestSetOpsAlgebra(t *testing.T) {
	mkSet := func(bs []byte) []DocID {
		seen := map[DocID]bool{}
		var out []DocID
		for _, b := range bs {
			id := DocID(b % 40)
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		// insertion order is random; sort via union with empty
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	prop := func(ab, bb []byte) bool {
		a, b := mkSet(ab), mkSet(bb)
		// |A∩B| + |A∪B| = |A| + |B|
		if len(intersectIDs(a, b))+len(unionIDs(a, b)) != len(a)+len(b) {
			return false
		}
		// A\B ∪ (A∩B) = A
		if !sameIDs(unionIDs(diffIDs(a, b), intersectIDs(a, b)), a) {
			return false
		}
		// Commutativity.
		if !sameIDs(intersectIDs(a, b), intersectIDs(b, a)) {
			return false
		}
		if !sameIDs(unionIDs(a, b), unionIDs(b, a)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
