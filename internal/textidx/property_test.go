package textidx

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomCorpus builds a small random corpus over a tiny vocabulary so terms
// collide frequently.
func randomCorpus(rng *rand.Rand, nDocs int) *Index {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	fields := []string{"title", "author"}
	ix := NewIndex()
	for i := 0; i < nDocs; i++ {
		d := Document{ExtID: "", Fields: map[string]string{}}
		for _, f := range fields {
			n := rng.Intn(6)
			words := make([]string, n)
			for j := range words {
				words[j] = vocab[rng.Intn(len(vocab))]
			}
			text := ""
			for j, w := range words {
				if j > 0 {
					text += " "
				}
				text += w
			}
			d.Fields[f] = text
		}
		ix.MustAdd(d)
	}
	ix.Freeze()
	return ix
}

// randomExpr builds a random search expression of bounded depth.
func randomExpr(rng *rand.Rand, depth int) Expr {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"}
	fields := []string{"title", "author", ""}
	word := func() string { return vocab[rng.Intn(len(vocab))] }
	field := func() string { return fields[rng.Intn(len(fields))] }
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return Term{Field: field(), Word: word()}
		case 1:
			return Phrase{Field: field(), Words: []string{word(), word()}}
		case 2:
			return Prefix{Field: field(), Stem: word()[:2]}
		default:
			return Near{Field: field(), A: word(), B: word(), Dist: 1 + rng.Intn(3)}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return And{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	case 1:
		return Or{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}
	default:
		return Not{E: randomExpr(rng, depth-1)}
	}
}

// TestIndexMatchesNaiveScan is the semantics property test: for random
// corpora and random Boolean expressions, index evaluation returns exactly
// the documents the per-document oracle accepts.
func TestIndexMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		ix := randomCorpus(rng, 1+rng.Intn(30))
		e := randomExpr(rng, rng.Intn(3))
		res, err := ix.Eval(e)
		if err != nil {
			t.Fatalf("trial %d: Eval(%s): %v", trial, e, err)
		}
		var want []DocID
		for id := 0; id < ix.NumDocs(); id++ {
			d, _ := ix.Doc(DocID(id))
			if MatchesDoc(e, d) {
				want = append(want, DocID(id))
			}
		}
		if !sameIDs(res.Docs, want) {
			t.Fatalf("trial %d: %s\n  index: %v\n  naive: %v", trial, e, res.Docs, want)
		}
		if !sort.SliceIsSorted(res.Docs, func(i, j int) bool { return res.Docs[i] < res.Docs[j] }) {
			t.Fatalf("trial %d: result not sorted", trial)
		}
	}
}

// TestParsedQueriesMatchNaiveScan exercises the parser together with the
// evaluator on hand-written queries.
func TestParsedQueriesMatchNaiveScan(t *testing.T) {
	ix := sampleIndex(t)
	queries := []string{
		"TI='belief update'",
		"TI='update' and AU='garcia'",
		"TI='update' or AU='kao'",
		"not TI='update'",
		"AB='in?'",
		"AB='information' near3 'filtering'",
		"(TI='update' or TI='text') and not AU='garcia'",
	}
	for _, q := range queries {
		e, err := Parse(q, MercuryAliases)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		res, err := ix.Eval(e)
		if err != nil {
			t.Fatalf("Eval(%q): %v", q, err)
		}
		var want []DocID
		for id := 0; id < ix.NumDocs(); id++ {
			d, _ := ix.Doc(DocID(id))
			if MatchesDoc(e, d) {
				want = append(want, DocID(id))
			}
		}
		if !reflect.DeepEqual(res.Docs, want) {
			t.Errorf("%q: index %v, naive %v", q, res.Docs, want)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := []DocID{1, 3, 5, 7}
	b := []DocID{3, 4, 5, 8}
	if got := intersectIDs(a, b); !reflect.DeepEqual(got, []DocID{3, 5}) {
		t.Errorf("intersect = %v", got)
	}
	if got := unionIDs(a, b); !reflect.DeepEqual(got, []DocID{1, 3, 4, 5, 7, 8}) {
		t.Errorf("union = %v", got)
	}
	if got := diffIDs(a, b); !reflect.DeepEqual(got, []DocID{1, 7}) {
		t.Errorf("diff = %v", got)
	}
	if got := intersectIDs(nil, b); len(got) != 0 {
		t.Errorf("intersect with empty = %v", got)
	}
	if got := unionIDs(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("union with empty = %v", got)
	}
	if got := diffIDs(a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("diff with empty = %v", got)
	}
}

// TestSetOpsAgainstMaps validates the merges against map-based set
// arithmetic on random inputs.
func TestSetOpsAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randSet := func() []DocID {
		n := rng.Intn(20)
		seen := map[DocID]bool{}
		for i := 0; i < n; i++ {
			seen[DocID(rng.Intn(30))] = true
		}
		var out []DocID
		for id := range seen {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	toMap := func(s []DocID) map[DocID]bool {
		m := map[DocID]bool{}
		for _, id := range s {
			m[id] = true
		}
		return m
	}
	fromMap := func(m map[DocID]bool) []DocID {
		var out []DocID
		for id, ok := range m {
			if ok {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randSet(), randSet()
		ma, mb := toMap(a), toMap(b)

		wantI := map[DocID]bool{}
		for id := range ma {
			if mb[id] {
				wantI[id] = true
			}
		}
		wantU := map[DocID]bool{}
		for id := range ma {
			wantU[id] = true
		}
		for id := range mb {
			wantU[id] = true
		}
		wantD := map[DocID]bool{}
		for id := range ma {
			if !mb[id] {
				wantD[id] = true
			}
		}
		if got := intersectIDs(a, b); !sameIDs(got, fromMap(wantI)) {
			t.Fatalf("intersect(%v, %v) = %v", a, b, got)
		}
		if got := unionIDs(a, b); !sameIDs(got, fromMap(wantU)) {
			t.Fatalf("union(%v, %v) = %v", a, b, got)
		}
		if got := diffIDs(a, b); !sameIDs(got, fromMap(wantD)) {
			t.Fatalf("diff(%v, %v) = %v", a, b, got)
		}
	}
}

func sameIDs(a, b []DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
