package textidx

import "sort"

// Normalize returns a canonical form of the expression under Boolean
// semantics: nested conjunctions and disjunctions are flattened, their
// children are normalized recursively, duplicate children are dropped,
// and the children are ordered by their rendering. Two expressions that
// differ only in operand order or nesting (e.g. "a and (b and c)" versus
// "(c and b) and a") normalize to the same value, so Normalize(e).String()
// is a sound cache key for search results — the use the cross-query
// probe-result cache depends on. The result evaluates to exactly the same
// document set as the input.
//
// Normalize never mutates its argument; And/Or nodes are rebuilt.
func Normalize(e Expr) Expr {
	switch e := e.(type) {
	case And:
		kids := normalizeNary([]Expr(e), flattenAnd)
		if len(kids) == 1 {
			return kids[0]
		}
		return And(kids)
	case Or:
		kids := normalizeNary([]Expr(e), flattenOr)
		if len(kids) == 1 {
			return kids[0]
		}
		return Or(kids)
	case Not:
		return Not{E: Normalize(e.E)}
	default:
		// Leaves (Term, Phrase, Prefix, Near) are already canonical.
		return e
	}
}

// flattenAnd appends e's conjuncts to dst, splicing nested Ands.
func flattenAnd(dst []Expr, e Expr) []Expr {
	if a, ok := e.(And); ok {
		for _, sub := range a {
			dst = flattenAnd(dst, sub)
		}
		return dst
	}
	return append(dst, Normalize(e))
}

// flattenOr appends e's disjuncts to dst, splicing nested Ors.
func flattenOr(dst []Expr, e Expr) []Expr {
	if o, ok := e.(Or); ok {
		for _, sub := range o {
			dst = flattenOr(dst, sub)
		}
		return dst
	}
	return append(dst, Normalize(e))
}

// normalizeNary flattens, sorts by rendering and deduplicates the children
// of one n-ary node.
func normalizeNary(kids []Expr, flatten func([]Expr, Expr) []Expr) []Expr {
	flat := make([]Expr, 0, len(kids))
	for _, k := range kids {
		flat = flatten(flat, k)
	}
	sort.SliceStable(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	out := flat[:0]
	var prev string
	for i, k := range flat {
		s := k.String()
		if i > 0 && s == prev {
			continue
		}
		out = append(out, k)
		prev = s
	}
	return out
}
