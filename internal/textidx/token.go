package textidx

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased word tokens. A token is a maximal
// run of letters and digits; everything else separates tokens. The same
// tokenizer is used at indexing time, at search time, and by the naive
// matcher (the test oracle and the RTP string-matching path), so the three
// agree on what "term t occurs in field f" means.
func Tokenize(text string) []string {
	var out []string
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out = append(out, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return out
}

// normalizeToken lower-cases a single word the same way Tokenize would.
// Multi-word input is not split; use Tokenize for that.
func normalizeToken(w string) string { return strings.ToLower(strings.TrimSpace(w)) }

// TermOccursIn reports whether the (single-word or phrase) term occurs in
// the field text, using exactly the index's tokenization and adjacency
// semantics. It is the shared ground-truth matcher used by relational text
// processing (§3.2) and by the property tests that compare index search
// results against a full scan.
func TermOccursIn(term, fieldText string) bool {
	words := Tokenize(term)
	if len(words) == 0 {
		return false
	}
	toks := Tokenize(fieldText)
	if len(words) == 1 {
		for _, t := range toks {
			if t == words[0] {
				return true
			}
		}
		return false
	}
	// Phrase: adjacent occurrence.
outer:
	for i := 0; i+len(words) <= len(toks); i++ {
		for j, w := range words {
			if toks[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}
