// Package textidx implements a Boolean text retrieval system of the kind
// the paper integrates with (CMU Project Mercury's engine): a collection of
// documents with named text fields, a positional inverted index, and a
// Boolean search language with field-scoped terms, phrases, truncated words
// ('filter?'), proximity ('nearK'), and the connectives and/or/not.
//
// Searching follows the paper's model of inversion-based systems: the
// inverted list of every term mentioned by the search is retrieved and the
// result is computed by set operations over sorted docid lists, so
// processing cost is linear in the total number of postings touched. That
// posting count is reported with every evaluation so the service layer can
// charge the paper's c_p cost constant.
package textidx

import (
	"fmt"
	"sort"
	"strings"
)

// DocID identifies a document within one index. IDs are dense: the i-th
// added document has DocID i.
type DocID int32

// Document is a set of named text fields plus an external identifier.
type Document struct {
	// ExtID is the externally visible identifier (e.g. "CSTR-124").
	ExtID string
	// Fields maps a field name (e.g. "title", "author") to its text.
	Fields map[string]string
}

// Field returns the named field's text ("" when absent).
func (d Document) Field(name string) string { return d.Fields[name] }

// postingList is the inverted list of one (field, term) pair: the sorted
// docids of documents whose field contains the term, with the token
// positions of each occurrence (for phrase and proximity search).
type postingList struct {
	docs      []DocID
	positions [][]int32 // parallel to docs
}

// add records an occurrence of the term at position pos in doc id.
// Documents are always indexed in increasing id order, so appends keep the
// list sorted.
func (p *postingList) add(id DocID, pos int32) {
	n := len(p.docs)
	if n > 0 && p.docs[n-1] == id {
		p.positions[n-1] = append(p.positions[n-1], pos)
		return
	}
	p.docs = append(p.docs, id)
	p.positions = append(p.positions, []int32{pos})
}

// fieldIndex holds all inverted lists of one field.
type fieldIndex struct {
	terms map[string]*postingList
	// sortedTerms is built by Freeze for truncation (prefix) queries.
	sortedTerms []string
}

// Index is an in-memory positional inverted index over a document
// collection. Build it with Add and then Freeze; a frozen index is
// read-only and safe for concurrent searches.
type Index struct {
	docs   []Document
	fields map[string]*fieldIndex
	frozen bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{fields: map[string]*fieldIndex{}}
}

// Add indexes a document and returns its DocID. Add fails after Freeze.
func (ix *Index) Add(d Document) (DocID, error) {
	if ix.frozen {
		return 0, fmt.Errorf("textidx: index is frozen")
	}
	id := DocID(len(ix.docs))
	ix.docs = append(ix.docs, d)
	for field, text := range d.Fields {
		fi := ix.fields[field]
		if fi == nil {
			fi = &fieldIndex{terms: map[string]*postingList{}}
			ix.fields[field] = fi
		}
		for pos, tok := range Tokenize(text) {
			pl := fi.terms[tok]
			if pl == nil {
				pl = &postingList{}
				fi.terms[tok] = pl
			}
			pl.add(id, int32(pos))
		}
	}
	return id, nil
}

// MustAdd is Add that panics on error.
func (ix *Index) MustAdd(d Document) DocID {
	id, err := ix.Add(d)
	if err != nil {
		panic(err)
	}
	return id
}

// Freeze finalises the index: prefix-search structures are built and
// further Adds are rejected.
func (ix *Index) Freeze() {
	if ix.frozen {
		return
	}
	for _, fi := range ix.fields {
		fi.sortedTerms = make([]string, 0, len(fi.terms))
		for t := range fi.terms {
			fi.sortedTerms = append(fi.sortedTerms, t)
		}
		sort.Strings(fi.sortedTerms)
	}
	ix.frozen = true
}

// Frozen reports whether Freeze has been called.
func (ix *Index) Frozen() bool { return ix.frozen }

// NumDocs returns the collection size (the paper's D).
func (ix *Index) NumDocs() int { return len(ix.docs) }

// Doc returns the document with the given id.
func (ix *Index) Doc(id DocID) (Document, error) {
	if id < 0 || int(id) >= len(ix.docs) {
		return Document{}, fmt.Errorf("textidx: no document %d", id)
	}
	return ix.docs[id], nil
}

// FieldNames returns the sorted names of all indexed fields.
func (ix *Index) FieldNames() []string {
	out := make([]string, 0, len(ix.fields))
	for f := range ix.fields {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// DocFrequency returns the number of documents whose field contains the
// term (the fanout of one instantiation). It does not charge any cost; it
// exists for the statistics the paper suggests text systems could export
// (§8) and for tests.
func (ix *Index) DocFrequency(field, term string) int {
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	pl := fi.terms[normalizeToken(term)]
	if pl == nil {
		return 0
	}
	return len(pl.docs)
}

// VocabularySize returns the number of distinct terms in a field.
func (ix *Index) VocabularySize(field string) int {
	fi := ix.fields[field]
	if fi == nil {
		return 0
	}
	return len(fi.terms)
}

// list returns the posting list for (field, term), or nil.
func (ix *Index) list(field, term string) *postingList {
	fi := ix.fields[field]
	if fi == nil {
		return nil
	}
	return fi.terms[term]
}

// prefixTerms returns all indexed terms of the field beginning with stem.
// The index must be frozen.
func (ix *Index) prefixTerms(field, stem string) []string {
	fi := ix.fields[field]
	if fi == nil {
		return nil
	}
	terms := fi.sortedTerms
	lo := sort.SearchStrings(terms, stem)
	hi := lo
	for hi < len(terms) && strings.HasPrefix(terms[hi], stem) {
		hi++
	}
	return terms[lo:hi]
}

// allDocs returns the sorted list of every docid (the universe used to
// evaluate NOT).
func (ix *Index) allDocs() []DocID {
	out := make([]DocID, len(ix.docs))
	for i := range out {
		out[i] = DocID(i)
	}
	return out
}
