package textidx

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Index persistence: a frozen index can be written to and restored from a
// compact binary snapshot (encoding/gob with delta-encoded postings), so
// a text server can start without re-indexing its collection.

// snapshotMagic guards against feeding arbitrary files to Load.
const snapshotMagic = "textidx-snapshot-v1"

// wirePosting is the serialised form of one posting list: docids are
// delta-encoded (sorted ascending), positions stored verbatim.
type wirePosting struct {
	Term      string
	DocDeltas []int32
	Positions [][]int32
}

type wireField struct {
	Name  string
	Lists []wirePosting
}

type wireIndex struct {
	Magic  string
	Docs   []Document
	Fields []wireField
}

// Save writes a snapshot of the frozen index.
func (ix *Index) Save(w io.Writer) error {
	if !ix.frozen {
		return fmt.Errorf("textidx: Save requires a frozen index")
	}
	out := wireIndex{Magic: snapshotMagic, Docs: ix.docs}
	for _, fname := range ix.FieldNames() {
		fi := ix.fields[fname]
		wf := wireField{Name: fname, Lists: make([]wirePosting, 0, len(fi.sortedTerms))}
		for _, term := range fi.sortedTerms {
			pl := fi.terms[term]
			deltas := make([]int32, len(pl.docs))
			prev := DocID(0)
			for i, id := range pl.docs {
				deltas[i] = int32(id - prev)
				prev = id
			}
			wf.Lists = append(wf.Lists, wirePosting{
				Term:      term,
				DocDeltas: deltas,
				Positions: pl.positions,
			})
		}
		out.Fields = append(out.Fields, wf)
	}
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&out); err != nil {
		return fmt.Errorf("textidx: encoding snapshot: %w", err)
	}
	return bw.Flush()
}

// Load restores an index from a snapshot written by Save. The returned
// index is frozen.
func Load(r io.Reader) (*Index, error) {
	var in wireIndex
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("textidx: decoding snapshot: %w", err)
	}
	if in.Magic != snapshotMagic {
		return nil, fmt.Errorf("textidx: not a textidx snapshot")
	}
	ix := NewIndex()
	ix.docs = in.Docs
	for _, wf := range in.Fields {
		fi := &fieldIndex{terms: make(map[string]*postingList, len(wf.Lists))}
		for _, wp := range wf.Lists {
			if len(wp.DocDeltas) != len(wp.Positions) {
				return nil, fmt.Errorf("textidx: corrupt snapshot: posting lengths differ for %q", wp.Term)
			}
			pl := &postingList{
				docs:      make([]DocID, len(wp.DocDeltas)),
				positions: wp.Positions,
			}
			prev := DocID(0)
			for i, d := range wp.DocDeltas {
				if d < 0 || (i > 0 && d == 0) {
					return nil, fmt.Errorf("textidx: corrupt snapshot: docids not strictly increasing for %q", wp.Term)
				}
				prev += DocID(d)
				if int(prev) >= len(ix.docs) {
					return nil, fmt.Errorf("textidx: corrupt snapshot: docid %d out of range", prev)
				}
				pl.docs[i] = prev
			}
			fi.terms[wp.Term] = pl
		}
		ix.fields[wf.Name] = fi
	}
	ix.Freeze()
	return ix, nil
}

// SaveFile writes the snapshot to a file (created or truncated).
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores an index from a snapshot file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
