package textidx

import "fmt"

// EvalResult is the outcome of evaluating a search expression: the sorted
// docids of matching documents plus the processing work done, measured as
// the total length of all inverted lists retrieved (the quantity the
// paper's c_p constant multiplies).
type EvalResult struct {
	Docs     []DocID
	Postings int
}

// Eval evaluates a Boolean search expression over the frozen index.
func (ix *Index) Eval(e Expr) (EvalResult, error) {
	if !ix.frozen {
		return EvalResult{}, fmt.Errorf("textidx: Eval requires a frozen index")
	}
	if err := Validate(e); err != nil {
		return EvalResult{}, err
	}
	ev := evaluator{ix: ix}
	docs := ev.eval(e)
	return EvalResult{Docs: docs, Postings: ev.postings}, nil
}

type evaluator struct {
	ix       *Index
	postings int
}

// fetch returns the posting list for (field, term) in one concrete field,
// charging its length.
func (ev *evaluator) fetch(field, term string) *postingList {
	pl := ev.ix.list(field, term)
	if pl == nil {
		return nil
	}
	ev.postings += len(pl.docs)
	return pl
}

// fieldsFor resolves "" to all indexed fields.
func (ev *evaluator) fieldsFor(field string) []string {
	if field != "" {
		return []string{field}
	}
	return ev.ix.FieldNames()
}

func (ev *evaluator) eval(e Expr) []DocID {
	switch e := e.(type) {
	case Term:
		return ev.evalTerm(e)
	case Phrase:
		return ev.evalPhrase(e)
	case Prefix:
		return ev.evalPrefix(e)
	case Near:
		return ev.evalNear(e)
	case And:
		out := ev.eval(e[0])
		for _, sub := range e[1:] {
			out = intersectIDs(out, ev.eval(sub))
		}
		return out
	case Or:
		out := ev.eval(e[0])
		for _, sub := range e[1:] {
			out = unionIDs(out, ev.eval(sub))
		}
		return out
	case Not:
		// Complementing requires a pass over the full docid universe.
		ev.postings += ev.ix.NumDocs()
		return diffIDs(ev.ix.allDocs(), ev.eval(e.E))
	default:
		return nil
	}
}

func (ev *evaluator) evalTerm(t Term) []DocID {
	word := normalizeToken(t.Word)
	var out []DocID
	for _, f := range ev.fieldsFor(t.Field) {
		if pl := ev.fetch(f, word); pl != nil {
			out = unionIDs(out, pl.docs)
		}
	}
	return out
}

func (ev *evaluator) evalPrefix(p Prefix) []DocID {
	stem := normalizeToken(p.Stem)
	var out []DocID
	for _, f := range ev.fieldsFor(p.Field) {
		for _, term := range ev.ix.prefixTerms(f, stem) {
			if pl := ev.fetch(f, term); pl != nil {
				out = unionIDs(out, pl.docs)
			}
		}
	}
	return out
}

func (ev *evaluator) evalPhrase(p Phrase) []DocID {
	var out []DocID
	for _, f := range ev.fieldsFor(p.Field) {
		out = unionIDs(out, ev.evalPhraseInField(f, p.Words))
	}
	return out
}

// evalPhraseInField intersects the words' lists with adjacency checks.
func (ev *evaluator) evalPhraseInField(field string, words []string) []DocID {
	lists := make([]*postingList, len(words))
	for i, w := range words {
		pl := ev.fetch(field, normalizeToken(w))
		if pl == nil {
			return nil
		}
		lists[i] = pl
	}
	// Walk candidates: docs present in every list where positions line up.
	var out []DocID
	cursors := make([]int, len(lists))
	first := lists[0]
candidate:
	for i0, id := range first.docs {
		// Advance every cursor to id.
		positionsByWord := make([][]int32, len(lists))
		positionsByWord[0] = first.positions[i0]
		for w := 1; w < len(lists); w++ {
			c := cursors[w]
			for c < len(lists[w].docs) && lists[w].docs[c] < id {
				c++
			}
			cursors[w] = c
			if c >= len(lists[w].docs) || lists[w].docs[c] != id {
				continue candidate
			}
			positionsByWord[w] = lists[w].positions[c]
		}
		// Adjacency: some p with word w at p+w for all w.
		for _, p0 := range positionsByWord[0] {
			ok := true
			for w := 1; w < len(positionsByWord); w++ {
				if !containsPos(positionsByWord[w], p0+int32(w)) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

func (ev *evaluator) evalNear(n Near) []DocID {
	var out []DocID
	for _, f := range ev.fieldsFor(n.Field) {
		out = unionIDs(out, ev.evalNearInField(f, n))
	}
	return out
}

func (ev *evaluator) evalNearInField(field string, n Near) []DocID {
	la := ev.fetch(field, normalizeToken(n.A))
	lb := ev.fetch(field, normalizeToken(n.B))
	if la == nil || lb == nil {
		return nil
	}
	var out []DocID
	i, j := 0, 0
	for i < len(la.docs) && j < len(lb.docs) {
		switch {
		case la.docs[i] < lb.docs[j]:
			i++
		case la.docs[i] > lb.docs[j]:
			j++
		default:
			if withinDistance(la.positions[i], lb.positions[j], n.Dist) {
				out = append(out, la.docs[i])
			}
			i++
			j++
		}
	}
	return out
}

func containsPos(ps []int32, p int32) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// withinDistance reports whether any position in a and any in b differ by
// at most dist (and are distinct positions).
func withinDistance(a, b []int32, dist int) bool {
	for _, pa := range a {
		for _, pb := range b {
			d := pa - pb
			if d < 0 {
				d = -d
			}
			if d != 0 && int(d) <= dist {
				return true
			}
		}
	}
	return false
}
