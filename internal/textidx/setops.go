package textidx

// Sorted docid set operations. These are the linear merges the paper's
// model of inversion-based systems assumes ("the lists are sorted and set
// operations take time linear in the lengths of the lists").

// intersectIDs returns the sorted intersection of two sorted docid lists.
func intersectIDs(a, b []DocID) []DocID {
	var out []DocID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionIDs returns the sorted union of two sorted docid lists.
func unionIDs(a, b []DocID) []DocID {
	out := make([]DocID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffIDs returns the sorted difference a \ b of two sorted docid lists.
func diffIDs(a, b []DocID) []DocID {
	var out []DocID
	i, j := 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			continue
		}
		out = append(out, a[i])
		i++
	}
	return out
}
