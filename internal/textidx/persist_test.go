package textidx

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	ix := sampleIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Frozen() || loaded.NumDocs() != ix.NumDocs() {
		t.Fatalf("loaded index: frozen=%v docs=%d", loaded.Frozen(), loaded.NumDocs())
	}
	// Every search behaves identically on the restored index.
	queries := []Expr{
		Term{Field: "title", Word: "update"},
		Phrase{Field: "title", Words: []string{"belief", "update"}},
		Prefix{Field: "title", Stem: "in"},
		And{Term{Field: "title", Word: "update"}, Not{E: Term{Field: "author", Word: "garcia"}}},
	}
	for _, q := range queries {
		a, err := ix.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(a.Docs, b.Docs) || a.Postings != b.Postings {
			t.Fatalf("%s: original %v/%d, loaded %v/%d", q, a.Docs, a.Postings, b.Docs, b.Postings)
		}
	}
	// Documents round-trip too.
	d0, _ := ix.Doc(0)
	l0, _ := loaded.Doc(0)
	if d0.ExtID != l0.ExtID || d0.Fields["title"] != l0.Fields["title"] {
		t.Fatal("documents differ after round trip")
	}
}

func TestSaveRequiresFrozen(t *testing.T) {
	ix := NewIndex()
	ix.MustAdd(Document{Fields: map[string]string{"t": "x"}})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err == nil {
		t.Fatal("unfrozen index saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gob stream with the wrong magic.
	ix := sampleIndex(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupted := bytes.Replace(raw, []byte(snapshotMagic), []byte("textidx-snapshot-v9"), 1)
	if _, err := Load(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	ix := sampleIndex(t)
	path := filepath.Join(t.TempDir(), "idx.snap")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != ix.NumDocs() {
		t.Fatal("file round trip lost documents")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestSaveLoadRandomised round-trips random corpora and compares random
// searches between the original and restored indexes.
func TestSaveLoadRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		ix := randomCorpus(rng, 1+rng.Intn(40))
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			e := randomExpr(rng, rng.Intn(3))
			a, err := ix.Eval(e)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.Eval(e)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDs(a.Docs, b.Docs) {
				t.Fatalf("trial %d: %s differs after round trip", trial, e)
			}
		}
	}
}
