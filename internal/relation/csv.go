package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"textjoin/internal/value"
)

// CSV loading: tables can be created from CSV files so the CLI and
// examples can run against user data. The first record is the header;
// each column may carry an optional type suffix after a colon —
// "year:int", "score:float", "active:bool" — defaulting to string.
// Empty cells load as NULL.

// LoadCSV reads a table from CSV.
func LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		colName := strings.TrimSpace(h)
		kind := value.KindString
		if idx := strings.LastIndexByte(colName, ':'); idx >= 0 {
			typeName := strings.ToLower(strings.TrimSpace(colName[idx+1:]))
			colName = strings.TrimSpace(colName[:idx])
			switch typeName {
			case "int", "integer":
				kind = value.KindInt
			case "float", "double", "real":
				kind = value.KindFloat
			case "bool", "boolean":
				kind = value.KindBool
			case "string", "varchar", "text", "":
				kind = value.KindString
			default:
				return nil, fmt.Errorf("relation: unknown CSV column type %q", typeName)
			}
		}
		cols[i] = Column{Name: strings.ToLower(colName), Kind: kind}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	t := NewTable(name, schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		row := make(Tuple, len(cols))
		for i, cell := range record {
			v, err := parseCell(cols[i].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d, column %s: %w", line, cols[i].Name, err)
			}
			row[i] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return t, nil
}

func parseCell(kind value.Kind, cell string) (value.Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return value.Null(), nil
	}
	switch kind {
	case value.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("bad integer %q", cell)
		}
		return value.Int(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("bad float %q", cell)
		}
		return value.Float(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return value.Null(), fmt.Errorf("bad boolean %q", cell)
		}
		return value.Bool(b), nil
	default:
		return value.String(cell), nil
	}
}

// LoadCSVFile reads a table from a CSV file; the table name defaults to
// the file's base name without extension.
func LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSV(name, f)
}

// WriteCSV writes the table as CSV with a typed header, inverse of
// LoadCSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.Arity())
	for i, c := range t.Schema.Cols {
		suffix := ""
		switch c.Kind {
		case value.KindInt:
			suffix = ":int"
		case value.KindFloat:
			suffix = ":float"
		case value.KindBool:
			suffix = ":bool"
		}
		header[i] = c.Name + suffix
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, t.Schema.Arity())
	for _, row := range t.Rows {
		for i, v := range row {
			record[i] = v.Text()
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
