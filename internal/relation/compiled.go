package relation

import (
	"fmt"
	"strings"

	"textjoin/internal/value"
)

// This file implements predicate compilation: resolving every column
// reference of a Predicate against a fixed schema once, so that per-row
// evaluation does no name lookups. The interpreted Predicate.Eval resolves
// names on every call — measurably dominant when a selection or join
// residual runs over millions of rows (see BenchmarkPredicateEval).
//
// Compile is schema-specific by construction: a compiled predicate is only
// valid for tuples of the schema it was compiled against.

// CompiledPred is a Predicate whose column references have been resolved
// to tuple offsets for one schema. The zero value is invalid; build with
// Compile.
type CompiledPred struct {
	root cnode
}

// cnode is one node of the compiled predicate tree. Evaluation never does
// name resolution; the only error source is an embedded predicate of an
// unknown type, kept interpreted as a fallback.
type cnode interface {
	eval(t Tuple) (bool, error)
}

// Compile resolves p's column references against s. Unknown columns fail
// here, with the same error the interpreted evaluation would produce per
// row. Predicate types outside the package's vocabulary are kept
// interpreted (resolved per row), so Compile never loses generality.
func Compile(p Predicate, s *Schema) (*CompiledPred, error) {
	n, err := compile(p, s)
	if err != nil {
		return nil, err
	}
	return &CompiledPred{root: n}, nil
}

// MustCompile is Compile that panics on error; for tests and literals.
func MustCompile(p Predicate, s *Schema) *CompiledPred {
	c, err := Compile(p, s)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the compiled predicate over one tuple of the schema it
// was compiled for.
func (c *CompiledPred) Eval(t Tuple) (bool, error) {
	return c.root.eval(t)
}

func compile(p Predicate, s *Schema) (cnode, error) {
	switch p := p.(type) {
	case nil:
		return cTrue{}, nil
	case True:
		return cTrue{}, nil
	case ColConst:
		idx := s.ColumnIndex(p.Col)
		if idx < 0 {
			return nil, fmt.Errorf("relation: unknown column %q in predicate", p.Col)
		}
		return cColConst{idx: idx, op: p.Op, c: p.Const}, nil
	case ColCol:
		li := s.ColumnIndex(p.Left)
		if li < 0 {
			return nil, fmt.Errorf("relation: unknown column %q in predicate", p.Left)
		}
		ri := s.ColumnIndex(p.Right)
		if ri < 0 {
			return nil, fmt.Errorf("relation: unknown column %q in predicate", p.Right)
		}
		return cColCol{li: li, ri: ri, op: p.Op}, nil
	case Contains:
		idx := s.ColumnIndex(p.Col)
		if idx < 0 {
			return nil, fmt.Errorf("relation: unknown column %q in predicate", p.Col)
		}
		return cContains{idx: idx, needle: strings.ToLower(p.Needle)}, nil
	case And:
		kids := make([]cnode, len(p))
		for i, sub := range p {
			n, err := compile(sub, s)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return cAnd(kids), nil
	case Or:
		kids := make([]cnode, len(p))
		for i, sub := range p {
			n, err := compile(sub, s)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		return cOr(kids), nil
	case Not:
		n, err := compile(p.P, s)
		if err != nil {
			return nil, err
		}
		return cNot{n}, nil
	default:
		// Unknown predicate implementation: keep it interpreted so external
		// Predicate types still work, just without the offset resolution.
		return cDyn{s: s, p: p}, nil
	}
}

type cTrue struct{}

func (cTrue) eval(Tuple) (bool, error) { return true, nil }

type cColConst struct {
	idx int
	op  CmpOp
	c   value.Value
}

func (n cColConst) eval(t Tuple) (bool, error) { return n.op.apply(t[n.idx], n.c), nil }

type cColCol struct {
	li, ri int
	op     CmpOp
}

func (n cColCol) eval(t Tuple) (bool, error) { return n.op.apply(t[n.li], t[n.ri]), nil }

type cContains struct {
	idx    int
	needle string // pre-lowered
}

func (n cContains) eval(t Tuple) (bool, error) {
	v := t[n.idx]
	if v.IsNull() {
		return false, nil
	}
	return strings.Contains(strings.ToLower(v.Text()), n.needle), nil
}

type cAnd []cnode

func (n cAnd) eval(t Tuple) (bool, error) {
	for _, sub := range n {
		ok, err := sub.eval(t)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

type cOr []cnode

func (n cOr) eval(t Tuple) (bool, error) {
	for _, sub := range n {
		ok, err := sub.eval(t)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

type cNot struct{ p cnode }

func (n cNot) eval(t Tuple) (bool, error) {
	ok, err := n.p.eval(t)
	return !ok, err
}

type cDyn struct {
	s *Schema
	p Predicate
}

func (n cDyn) eval(t Tuple) (bool, error) { return n.p.Eval(n.s, t) }

// PredicateColumns returns the column names p references, without
// duplicates, and whether p is made only of the package's predicate
// vocabulary (ok=false when an unknown Predicate type is embedded, in
// which case the reference set cannot be known statically).
func PredicateColumns(p Predicate) (cols []string, ok bool) {
	seen := map[string]bool{}
	var add func(name string)
	add = func(name string) {
		if !seen[name] {
			seen[name] = true
			cols = append(cols, name)
		}
	}
	var walk func(p Predicate) bool
	walk = func(p Predicate) bool {
		switch p := p.(type) {
		case nil, True:
			return true
		case ColConst:
			add(p.Col)
			return true
		case ColCol:
			add(p.Left)
			add(p.Right)
			return true
		case Contains:
			add(p.Col)
			return true
		case And:
			for _, sub := range p {
				if !walk(sub) {
					return false
				}
			}
			return true
		case Or:
			for _, sub := range p {
				if !walk(sub) {
					return false
				}
			}
			return true
		case Not:
			return walk(p.P)
		default:
			return false
		}
	}
	return cols, walk(p)
}
