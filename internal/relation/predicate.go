package relation

import (
	"fmt"
	"strings"

	"textjoin/internal/value"
)

// CmpOp enumerates the comparison operators of the SQL surface syntax.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// apply evaluates "a op b" using value.Compare semantics. Comparisons with
// NULL are false except NULL = NULL and NULL <= ... per Compare's total
// order; conjunctive queries in the paper never rely on three-valued logic.
func (op CmpOp) apply(a, b value.Value) bool {
	c := value.Compare(a, b)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Predicate evaluates to a boolean over a tuple of a given schema.
type Predicate interface {
	Eval(s *Schema, t Tuple) (bool, error)
	String() string
}

// ColConst compares a column against a constant: "col op const".
type ColConst struct {
	Col   string
	Op    CmpOp
	Const value.Value
}

// Eval implements Predicate.
func (p ColConst) Eval(s *Schema, t Tuple) (bool, error) {
	idx := s.ColumnIndex(p.Col)
	if idx < 0 {
		return false, fmt.Errorf("relation: unknown column %q in predicate", p.Col)
	}
	return p.Op.apply(t[idx], p.Const), nil
}

func (p ColConst) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Const)
}

// ColCol compares two columns: "left op right".
type ColCol struct {
	Left  string
	Op    CmpOp
	Right string
}

// Eval implements Predicate.
func (p ColCol) Eval(s *Schema, t Tuple) (bool, error) {
	li := s.ColumnIndex(p.Left)
	ri := s.ColumnIndex(p.Right)
	if li < 0 {
		return false, fmt.Errorf("relation: unknown column %q in predicate", p.Left)
	}
	if ri < 0 {
		return false, fmt.Errorf("relation: unknown column %q in predicate", p.Right)
	}
	return p.Op.apply(t[li], t[ri]), nil
}

func (p ColCol) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// And is the conjunction of its parts; the empty conjunction is true.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(s *Schema, t Tuple) (bool, error) {
	for _, sub := range p {
		ok, err := sub.Eval(s, t)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func (p And) String() string {
	if len(p) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " and ")
}

// Or is the disjunction of its parts; the empty disjunction is false.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(s *Schema, t Tuple) (bool, error) {
	for _, sub := range p {
		ok, err := sub.Eval(s, t)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (p Or) String() string {
	if len(p) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(p))
	for i, sub := range p {
		parts[i] = "(" + sub.String() + ")"
	}
	return strings.Join(parts, " or ")
}

// Not negates its operand.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (p Not) Eval(s *Schema, t Tuple) (bool, error) {
	ok, err := p.P.Eval(s, t)
	return !ok, err
}

func (p Not) String() string { return "not (" + p.P.String() + ")" }

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(*Schema, Tuple) (bool, error) { return true, nil }

func (True) String() string { return "TRUE" }

// Contains is the SQL-supported substring match used by relational text
// processing (RTP, §3.2): true when the column's text contains the constant
// as a word-boundary-insensitive substring (SQL LIKE '%c%' semantics).
type Contains struct {
	Col    string
	Needle string
}

// Eval implements Predicate.
func (p Contains) Eval(s *Schema, t Tuple) (bool, error) {
	idx := s.ColumnIndex(p.Col)
	if idx < 0 {
		return false, fmt.Errorf("relation: unknown column %q in predicate", p.Col)
	}
	v := t[idx]
	if v.IsNull() {
		return false, nil
	}
	return strings.Contains(strings.ToLower(v.Text()), strings.ToLower(p.Needle)), nil
}

func (p Contains) String() string {
	return fmt.Sprintf("%s like '%%%s%%'", p.Col, p.Needle)
}
