// Package relation implements the structured-data half of the loosely
// integrated system: schemas, tuples, in-memory tables, selection and join
// predicates, and the classic relational operators (scan, select, project,
// distinct, nested-loop join, hash join) that the paper's database side
// (OpenODB in the original) provides.
//
// The engine is deliberately small but complete for Select-Project-Join
// (conjunctive) queries, which is the query class the paper studies.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"textjoin/internal/value"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns. Column names are unique within a
// schema; qualified names ("table.column") are produced by Qualify.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns, validating name uniqueness.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: empty column name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Schema{Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests and
// generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Cols) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Qualify returns a copy of the schema with every column renamed to
// "prefix.name". Already-qualified names are left untouched.
func (s *Schema) Qualify(prefix string) *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		name := c.Name
		if !strings.Contains(name, ".") {
			name = prefix + "." + name
		}
		out.Cols[i] = Column{Name: name, Kind: c.Kind}
	}
	return out
}

// Concat returns a schema holding s's columns followed by t's.
func (s *Schema) Concat(t *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(t.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, t.Cols...)
	return out
}

// String renders the schema as "(a VARCHAR, b INTEGER)".
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row; its layout is defined by the owning table's schema.
type Tuple []value.Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns a new tuple holding t's values followed by u's.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// Table is an in-memory relation: a schema plus a bag of tuples.
type Table struct {
	Name   string
	Schema *Schema
	Rows   []Tuple
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Insert appends a tuple after checking arity and kinds (NULL is accepted in
// any column).
func (t *Table) Insert(row Tuple) error {
	if len(row) != t.Schema.Arity() {
		return fmt.Errorf("relation: %s expects %d values, got %d", t.Name, t.Schema.Arity(), len(row))
	}
	for i, v := range row {
		if !v.IsNull() && v.Kind() != t.Schema.Cols[i].Kind {
			return fmt.Errorf("relation: %s.%s expects %s, got %s",
				t.Name, t.Schema.Cols[i].Name, t.Schema.Cols[i].Kind, v.Kind())
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// MustInsert is Insert that panics on error.
func (t *Table) MustInsert(row Tuple) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Cardinality returns the number of tuples (the paper's N).
func (t *Table) Cardinality() int { return len(t.Rows) }

// Column returns all values in the named column.
func (t *Table) Column(name string) ([]value.Value, error) {
	idx := t.Schema.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("relation: %s has no column %q", t.Name, name)
	}
	out := make([]value.Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out, nil
}

// DistinctCount returns the number of distinct values in the named columns
// taken jointly (the paper's N_i for a single column, N_J for a set).
func (t *Table) DistinctCount(names ...string) (int, error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idx := t.Schema.ColumnIndex(n)
		if idx < 0 {
			return 0, fmt.Errorf("relation: %s has no column %q", t.Name, n)
		}
		idxs[i] = idx
	}
	seen := map[string]bool{}
	vals := make([]value.Value, len(idxs))
	for _, r := range t.Rows {
		for j, idx := range idxs {
			vals[j] = r[idx]
		}
		seen[value.KeyOf(vals...)] = true
	}
	return len(seen), nil
}

// DistinctOn returns one representative tuple per distinct combination of
// the named columns, preserving first-seen order. This implements the TS
// optimisation of sending one query per distinct binding of the join
// columns (§3.1).
func (t *Table) DistinctOn(names ...string) (*Table, error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idx := t.Schema.ColumnIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", t.Name, n)
		}
		idxs[i] = idx
	}
	out := NewTable(t.Name, t.Schema)
	seen := map[string]bool{}
	vals := make([]value.Value, len(idxs))
	for _, r := range t.Rows {
		for j, idx := range idxs {
			vals[j] = r[idx]
		}
		k := value.KeyOf(vals...)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// GroupBy partitions row indices by the joint value of the named columns.
// Groups preserve first-seen order of keys; the returned keys slice gives
// that order.
func (t *Table) GroupBy(names ...string) (keys []string, groups map[string][]int, err error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idx := t.Schema.ColumnIndex(n)
		if idx < 0 {
			return nil, nil, fmt.Errorf("relation: %s has no column %q", t.Name, n)
		}
		idxs[i] = idx
	}
	groups = map[string][]int{}
	vals := make([]value.Value, len(idxs))
	for i, r := range t.Rows {
		for j, idx := range idxs {
			vals[j] = r[idx]
		}
		k := value.KeyOf(vals...)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	return keys, groups, nil
}

// Select returns a new table holding the rows satisfying pred. The
// predicate is compiled once against the schema, so per-row evaluation
// does no column-name resolution.
func (t *Table) Select(pred Predicate) (*Table, error) {
	cp, err := Compile(pred, t.Schema)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Name, t.Schema)
	for _, r := range t.Rows {
		ok, err := cp.Eval(r)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// Project returns a new table with only the named columns, in the given
// order. Duplicates are retained (bag semantics).
func (t *Table) Project(names ...string) (*Table, error) {
	idxs := make([]int, len(names))
	cols := make([]Column, len(names))
	for i, n := range names {
		idx := t.Schema.ColumnIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", t.Name, n)
		}
		idxs[i] = idx
		cols[i] = t.Schema.Cols[idx]
	}
	out := NewTable(t.Name, &Schema{Cols: cols})
	for _, r := range t.Rows {
		row := make(Tuple, len(idxs))
		for j, idx := range idxs {
			row[j] = r[idx]
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// SortBy orders rows by the named columns ascending. It returns a new table.
func (t *Table) SortBy(names ...string) (*Table, error) {
	idxs := make([]int, len(names))
	for i, n := range names {
		idx := t.Schema.ColumnIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", t.Name, n)
		}
		idxs[i] = idx
	}
	out := NewTable(t.Name, t.Schema)
	out.Rows = make([]Tuple, len(t.Rows))
	copy(out.Rows, t.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool {
		for _, idx := range idxs {
			if c := value.Compare(out.Rows[i][idx], out.Rows[j][idx]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out, nil
}

// Qualified returns a view of the table whose schema columns are qualified
// with the table's name. Rows are shared, not copied.
func (t *Table) Qualified() *Table {
	return &Table{Name: t.Name, Schema: t.Schema.Qualify(t.Name), Rows: t.Rows}
}

// String renders a compact description of the table.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.Name, t.Schema, len(t.Rows))
}
