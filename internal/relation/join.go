package relation

import (
	"fmt"

	"textjoin/internal/value"
)

// EquiJoinCond is one equality join condition between a column of the left
// table and a column of the right table.
type EquiJoinCond struct {
	Left  string
	Right string
}

// NestedLoopJoin joins left and right with an arbitrary join predicate that
// is evaluated over the concatenated schema. It is the general (theta) join
// used when no equality condition is available, e.g. Q5's
// "faculty.dept != student.dept".
// It is the row-at-a-time fallback of the vectorized nested-loop operator
// (internal/vec); the predicate is compiled once and evaluated over a
// reused scratch row, which is copied only on a match — the old
// concatenate-then-test loop allocated a row per candidate pair even when
// the predicate rejected it (see BenchmarkNestedLoopJoin for the delta).
func NestedLoopJoin(left, right *Table, pred Predicate) (*Table, error) {
	schema := left.Schema.Concat(right.Schema)
	cp, err := Compile(pred, schema)
	if err != nil {
		return nil, err
	}
	out := NewTable(left.Name+"⋈"+right.Name, schema)
	la := left.Schema.Arity()
	scratch := make(Tuple, schema.Arity())
	for _, lr := range left.Rows {
		copy(scratch[:la], lr)
		for _, rr := range right.Rows {
			copy(scratch[la:], rr)
			ok, err := cp.Eval(scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, scratch.Clone())
			}
		}
	}
	return out, nil
}

// HashJoin joins left and right on the conjunction of equality conditions,
// optionally filtering with an extra residual predicate over the
// concatenated schema (pass nil for none). It builds on the smaller input.
func HashJoin(left, right *Table, conds []EquiJoinCond, residual Predicate) (*Table, error) {
	if len(conds) == 0 {
		p := residual
		if p == nil {
			p = True{}
		}
		return NestedLoopJoin(left, right, p)
	}
	lIdx := make([]int, len(conds))
	rIdx := make([]int, len(conds))
	for i, c := range conds {
		li := left.Schema.ColumnIndex(c.Left)
		if li < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", left.Name, c.Left)
		}
		ri := right.Schema.ColumnIndex(c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", right.Name, c.Right)
		}
		lIdx[i], rIdx[i] = li, ri
	}

	schema := left.Schema.Concat(right.Schema)
	var res *CompiledPred
	if residual != nil {
		var err error
		res, err = Compile(residual, schema)
		if err != nil {
			return nil, err
		}
	}
	out := NewTable(left.Name+"⋈"+right.Name, schema)

	// Build on right, probe with left, preserving left-major output order
	// (same order as the nested-loop formulation, which keeps results
	// comparable across join algorithms in tests). The residual is
	// evaluated over a reused scratch row, copied only on a match.
	build := map[string][]int{}
	key := make([]value.Value, len(conds))
	for i, rr := range right.Rows {
		for j, idx := range rIdx {
			key[j] = rr[idx]
		}
		k := value.KeyOf(key...)
		build[k] = append(build[k], i)
	}
	la := left.Schema.Arity()
	scratch := make(Tuple, schema.Arity())
	for _, lr := range left.Rows {
		for j, idx := range lIdx {
			key[j] = lr[idx]
		}
		k := value.KeyOf(key...)
		matches := build[k]
		if len(matches) == 0 {
			continue
		}
		copy(scratch[:la], lr)
		for _, ri := range matches {
			copy(scratch[la:], right.Rows[ri])
			if res != nil {
				ok, err := res.Eval(scratch)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Rows = append(out.Rows, scratch.Clone())
		}
	}
	return out, nil
}

// SemiJoin returns the left tuples that have at least one match in right
// under the equality conditions. It is the classical distributed-database
// reducer the paper's probe nodes emulate against the text source.
func SemiJoin(left, right *Table, conds []EquiJoinCond) (*Table, error) {
	lIdx := make([]int, len(conds))
	rIdx := make([]int, len(conds))
	for i, c := range conds {
		li := left.Schema.ColumnIndex(c.Left)
		if li < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", left.Name, c.Left)
		}
		ri := right.Schema.ColumnIndex(c.Right)
		if ri < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", right.Name, c.Right)
		}
		lIdx[i], rIdx[i] = li, ri
	}
	present := map[string]bool{}
	key := make([]value.Value, len(conds))
	for _, rr := range right.Rows {
		for j, idx := range rIdx {
			key[j] = rr[idx]
		}
		present[value.KeyOf(key...)] = true
	}
	out := NewTable(left.Name, left.Schema)
	for _, lr := range left.Rows {
		for j, idx := range lIdx {
			key[j] = lr[idx]
		}
		if present[value.KeyOf(key...)] {
			out.Rows = append(out.Rows, lr)
		}
	}
	return out, nil
}
