package relation

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"textjoin/internal/value"
)

// randTable builds a random two-column string table from a seed.
func randTable(seed int64, name string, maxRows int) *Table {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"a", "b", "c", "d", "e"}
	t := NewTable(name, MustSchema(
		Column{Name: name + "1", Kind: value.KindString},
		Column{Name: name + "2", Kind: value.KindString},
	))
	n := rng.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		t.MustInsert(Tuple{
			value.String(vocab[rng.Intn(len(vocab))]),
			value.String(vocab[rng.Intn(len(vocab))]),
		})
	}
	return t
}

// canonical renders rows as sorted strings for multiset comparison.
func canonical(t *Table) []string {
	out := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.Key()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameMultiset(a, b *Table) bool {
	ca, cb := canonical(a), canonical(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestHashJoinEqualsNestedLoop: on random tables, the hash join equals
// the nested-loop join with the equivalent predicate (quick).
func TestHashJoinEqualsNestedLoop(t *testing.T) {
	prop := func(seedL, seedR int64) bool {
		l := randTable(seedL, "l", 12)
		r := randTable(seedR, "r", 12)
		hj, err := HashJoin(l, r, []EquiJoinCond{{Left: "l1", Right: "r1"}}, nil)
		if err != nil {
			return false
		}
		nl, err := NestedLoopJoin(l, r, ColCol{Left: "l1", Op: OpEq, Right: "r1"})
		if err != nil {
			return false
		}
		return sameMultiset(hj, nl)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSemiJoinIsFilter: semi-join output is a sub-bag of the left input
// and contains exactly the tuples that appear in the join (quick).
func TestSemiJoinIsFilter(t *testing.T) {
	prop := func(seedL, seedR int64) bool {
		l := randTable(seedL, "l", 12)
		r := randTable(seedR, "r", 12)
		sj, err := SemiJoin(l, r, []EquiJoinCond{{Left: "l1", Right: "r1"}})
		if err != nil {
			return false
		}
		if sj.Cardinality() > l.Cardinality() {
			return false
		}
		// A tuple survives iff its key appears in r1.
		present := map[string]bool{}
		for _, row := range r.Rows {
			present[row[0].Key()] = true
		}
		want := 0
		for _, row := range l.Rows {
			if present[row[0].Key()] {
				want++
			}
		}
		return sj.Cardinality() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDistinctOnInvariants: DistinctOn yields one row per distinct key,
// each drawn from the input (quick).
func TestDistinctOnInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		tbl := randTable(seed, "t", 20)
		d, err := tbl.DistinctOn("t1")
		if err != nil {
			return false
		}
		n, err := tbl.DistinctCount("t1")
		if err != nil {
			return false
		}
		if d.Cardinality() != n {
			return false
		}
		seen := map[string]bool{}
		for _, row := range d.Rows {
			k := row[0].Key()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGroupByPartitions: groups cover all rows exactly once and agree on
// the grouping key (quick).
func TestGroupByPartitions(t *testing.T) {
	prop := func(seed int64) bool {
		tbl := randTable(seed, "t", 20)
		keys, groups, err := tbl.GroupBy("t1", "t2")
		if err != nil {
			return false
		}
		covered := map[int]bool{}
		for _, key := range keys {
			for _, idx := range groups[key] {
				if covered[idx] {
					return false
				}
				covered[idx] = true
				row := tbl.Rows[idx]
				if value.KeyOf(row[0], row[1]) != key {
					return false
				}
			}
		}
		return len(covered) == tbl.Cardinality()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSortByIsPermutation: sorting preserves the multiset and orders the
// key column (quick).
func TestSortByIsPermutation(t *testing.T) {
	prop := func(seed int64) bool {
		tbl := randTable(seed, "t", 20)
		sorted, err := tbl.SortBy("t1")
		if err != nil {
			return false
		}
		if !sameMultiset(tbl, sorted) {
			return false
		}
		for i := 1; i < len(sorted.Rows); i++ {
			if value.Compare(sorted.Rows[i-1][0], sorted.Rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
