package relation

import (
	"strings"
	"testing"

	"textjoin/internal/value"
)

func studentTable(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{"name", value.KindString},
		Column{"area", value.KindString},
		Column{"year", value.KindInt},
		Column{"advisor", value.KindString},
	)
	tbl := NewTable("student", schema)
	rows := []Tuple{
		{value.String("Gravano"), value.String("AI"), value.Int(4), value.String("Garcia")},
		{value.String("Kao"), value.String("AI"), value.Int(2), value.String("Garcia")},
		{value.String("Radhika"), value.String("DB"), value.Int(5), value.String("Ullman")},
		{value.String("Pham"), value.String("AI"), value.Int(4), value.String("Garcia")},
		{value.String("Gravano"), value.String("DB"), value.Int(4), value.String("Ullman")},
	}
	for _, r := range rows {
		tbl.MustInsert(r)
	}
	return tbl
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(Column{"a", value.KindInt}, Column{"a", value.KindString})
	if err == nil {
		t.Fatal("duplicate column accepted")
	}
	_, err = NewSchema(Column{"", value.KindInt})
	if err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestSchemaQualifyAndIndex(t *testing.T) {
	s := MustSchema(Column{"name", value.KindString}, Column{"year", value.KindInt})
	q := s.Qualify("student")
	if q.ColumnIndex("student.name") != 0 || q.ColumnIndex("student.year") != 1 {
		t.Fatalf("qualified schema wrong: %v", q)
	}
	// Qualifying twice must not double-prefix.
	qq := q.Qualify("x")
	if qq.ColumnIndex("student.name") != 0 {
		t.Fatal("re-qualification changed already-qualified names")
	}
	if s.ColumnIndex("name") != 0 {
		t.Fatal("original schema mutated by Qualify")
	}
	if s.ColumnIndex("nope") != -1 {
		t.Fatal("missing column should index -1")
	}
}

func TestInsertValidation(t *testing.T) {
	s := MustSchema(Column{"a", value.KindInt})
	tbl := NewTable("t", s)
	if err := tbl.Insert(Tuple{value.String("x")}); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if err := tbl.Insert(Tuple{value.Int(1), value.Int(2)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tbl.Insert(Tuple{value.Null()}); err != nil {
		t.Fatalf("NULL rejected: %v", err)
	}
	if err := tbl.Insert(Tuple{value.Int(7)}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if tbl.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2", tbl.Cardinality())
	}
}

func TestColumnAndDistinct(t *testing.T) {
	tbl := studentTable(t)
	names, err := tbl.Column("name")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 || names[0].AsString() != "Gravano" {
		t.Fatalf("Column returned %v", names)
	}
	if _, err := tbl.Column("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}

	n, err := tbl.DistinctCount("name")
	if err != nil || n != 4 {
		t.Fatalf("DistinctCount(name) = %d, %v; want 4", n, err)
	}
	n, err = tbl.DistinctCount("name", "area")
	if err != nil || n != 5 {
		t.Fatalf("DistinctCount(name, area) = %d, %v; want 5", n, err)
	}
	n, err = tbl.DistinctCount("advisor")
	if err != nil || n != 2 {
		t.Fatalf("DistinctCount(advisor) = %d, %v; want 2", n, err)
	}
	if _, err := tbl.DistinctCount("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestDistinctOn(t *testing.T) {
	tbl := studentTable(t)
	d, err := tbl.DistinctOn("name")
	if err != nil {
		t.Fatal(err)
	}
	if d.Cardinality() != 4 {
		t.Fatalf("DistinctOn(name) kept %d rows, want 4", d.Cardinality())
	}
	// First-seen representative retained.
	if d.Rows[0][1].AsString() != "AI" {
		t.Fatal("DistinctOn did not keep first-seen representative")
	}
	if _, err := tbl.DistinctOn("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestGroupBy(t *testing.T) {
	tbl := studentTable(t)
	keys, groups, err := tbl.GroupBy("advisor")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("GroupBy produced %d groups, want 2", len(keys))
	}
	total := 0
	for _, idxs := range groups {
		total += len(idxs)
	}
	if total != 5 {
		t.Fatalf("groups cover %d rows, want 5", total)
	}
	if _, _, err := tbl.GroupBy("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestSelectProjectSort(t *testing.T) {
	tbl := studentTable(t)
	sel, err := tbl.Select(And{
		ColConst{"area", OpEq, value.String("AI")},
		ColConst{"year", OpGt, value.Int(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cardinality() != 2 {
		t.Fatalf("selection kept %d rows, want 2 (senior AI students)", sel.Cardinality())
	}

	proj, err := sel.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Schema.Arity() != 1 || proj.Cardinality() != 2 {
		t.Fatalf("projection wrong: %v", proj)
	}
	if _, err := sel.Project("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}

	sorted, err := tbl.SortBy("year", "name")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Rows[0][2].AsInt() != 2 {
		t.Fatal("sort by year failed")
	}
	if tbl.Rows[0][2].AsInt() != 4 {
		t.Fatal("SortBy mutated the source table")
	}
	if _, err := tbl.SortBy("zzz"); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestPredicates(t *testing.T) {
	s := MustSchema(Column{"a", value.KindInt}, Column{"b", value.KindInt}, Column{"t", value.KindString})
	row := Tuple{value.Int(3), value.Int(5), value.String("Information Filtering Systems")}

	cases := []struct {
		p    Predicate
		want bool
	}{
		{ColConst{"a", OpEq, value.Int(3)}, true},
		{ColConst{"a", OpNe, value.Int(3)}, false},
		{ColConst{"a", OpLt, value.Int(4)}, true},
		{ColConst{"a", OpLe, value.Int(3)}, true},
		{ColConst{"a", OpGt, value.Int(3)}, false},
		{ColConst{"a", OpGe, value.Int(3)}, true},
		{ColCol{"a", OpLt, "b"}, true},
		{ColCol{"a", OpEq, "b"}, false},
		{And{ColConst{"a", OpEq, value.Int(3)}, ColCol{"a", OpLt, "b"}}, true},
		{And{}, true},
		{Or{ColConst{"a", OpEq, value.Int(99)}, ColConst{"b", OpEq, value.Int(5)}}, true},
		{Or{}, false},
		{Not{ColConst{"a", OpEq, value.Int(3)}}, false},
		{True{}, true},
		{Contains{"t", "filtering"}, true},
		{Contains{"t", "FILTERING"}, true},
		{Contains{"t", "database"}, false},
	}
	for _, c := range cases {
		got, err := c.p.Eval(s, row)
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPredicateErrors(t *testing.T) {
	s := MustSchema(Column{"a", value.KindInt})
	row := Tuple{value.Int(1)}
	bad := []Predicate{
		ColConst{"x", OpEq, value.Int(1)},
		ColCol{"x", OpEq, "a"},
		ColCol{"a", OpEq, "x"},
		Contains{"x", "y"},
		And{ColConst{"x", OpEq, value.Int(1)}},
		Or{ColConst{"x", OpEq, value.Int(1)}},
		Not{ColConst{"x", OpEq, value.Int(1)}},
	}
	for _, p := range bad {
		if _, err := p.Eval(s, row); err == nil {
			t.Errorf("%s: missing column not reported", p)
		}
	}
}

func TestContainsNull(t *testing.T) {
	s := MustSchema(Column{"t", value.KindString})
	got, err := Contains{"t", "x"}.Eval(s, Tuple{value.Null()})
	if err != nil || got {
		t.Fatalf("Contains on NULL = %v, %v; want false, nil", got, err)
	}
}

func TestPredicateStrings(t *testing.T) {
	p := And{
		ColConst{"area", OpEq, value.String("AI")},
		Or{ColCol{"a", OpNe, "b"}},
		Not{True{}},
	}
	s := p.String()
	for _, want := range []string{"area = 'AI'", "a != b", "not (TRUE)"} {
		if !strings.Contains(s, want) {
			t.Errorf("predicate rendering %q missing %q", s, want)
		}
	}
	if (And{}).String() != "TRUE" || (Or{}).String() != "FALSE" {
		t.Error("empty And/Or rendering wrong")
	}
}

func facultyTable(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{"fname", value.KindString},
		Column{"dept", value.KindString},
	)
	tbl := NewTable("faculty", schema)
	for _, r := range []Tuple{
		{value.String("Garcia"), value.String("CS")},
		{value.String("Ullman"), value.String("CS")},
		{value.String("Widom"), value.String("EE")},
	} {
		tbl.MustInsert(r)
	}
	return tbl
}

func TestNestedLoopJoin(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	out, err := NestedLoopJoin(s, f, ColCol{"advisor", OpEq, "fname"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 5 {
		t.Fatalf("join produced %d rows, want 5", out.Cardinality())
	}
	if out.Schema.Arity() != 6 {
		t.Fatalf("join schema arity = %d, want 6", out.Schema.Arity())
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	nl, err := NestedLoopJoin(s, f, ColCol{"advisor", OpEq, "fname"})
	if err != nil {
		t.Fatal(err)
	}
	hj, err := HashJoin(s, f, []EquiJoinCond{{"advisor", "fname"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Cardinality() != hj.Cardinality() {
		t.Fatalf("hash join %d rows, nested loop %d", hj.Cardinality(), nl.Cardinality())
	}
	for i := range nl.Rows {
		for j := range nl.Rows[i] {
			if !value.Equal(nl.Rows[i][j], hj.Rows[i][j]) {
				t.Fatalf("row %d differs between join algorithms", i)
			}
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	out, err := HashJoin(s, f, []EquiJoinCond{{"advisor", "fname"}},
		ColConst{"year", OpGt, value.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 4 {
		t.Fatalf("residual-filtered join produced %d rows, want 4", out.Cardinality())
	}
}

func TestHashJoinNoCondsFallsBack(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	out, err := HashJoin(s, f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != s.Cardinality()*f.Cardinality() {
		t.Fatalf("cross product size %d, want %d", out.Cardinality(), s.Cardinality()*f.Cardinality())
	}
}

func TestHashJoinErrors(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	if _, err := HashJoin(s, f, []EquiJoinCond{{"zzz", "fname"}}, nil); err == nil {
		t.Fatal("missing left column accepted")
	}
	if _, err := HashJoin(s, f, []EquiJoinCond{{"advisor", "zzz"}}, nil); err == nil {
		t.Fatal("missing right column accepted")
	}
}

func TestSemiJoin(t *testing.T) {
	s := studentTable(t)
	f := facultyTable(t)
	out, err := SemiJoin(s, f, []EquiJoinCond{{"advisor", "fname"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 5 {
		t.Fatalf("semi-join kept %d rows, want 5", out.Cardinality())
	}
	if out.Schema != s.Schema {
		t.Fatal("semi-join must preserve the left schema")
	}
	// Shrink right so some students lose their advisor.
	f2 := NewTable("faculty", f.Schema)
	f2.MustInsert(Tuple{value.String("Garcia"), value.String("CS")})
	out, err = SemiJoin(s, f2, []EquiJoinCond{{"advisor", "fname"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cardinality() != 3 {
		t.Fatalf("semi-join kept %d rows, want 3", out.Cardinality())
	}
	if _, err := SemiJoin(s, f, []EquiJoinCond{{"zzz", "fname"}}); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := SemiJoin(s, f, []EquiJoinCond{{"advisor", "zzz"}}); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestTupleCloneAndConcat(t *testing.T) {
	a := Tuple{value.Int(1), value.Int(2)}
	c := a.Clone()
	c[0] = value.Int(9)
	if a[0].AsInt() != 1 {
		t.Fatal("Clone is not a deep copy of the tuple slice")
	}
	ab := a.Concat(Tuple{value.Int(3)})
	if len(ab) != 3 || ab[2].AsInt() != 3 {
		t.Fatal("Concat wrong")
	}
}

func TestQualifiedView(t *testing.T) {
	tbl := studentTable(t)
	q := tbl.Qualified()
	if q.Schema.ColumnIndex("student.name") != 0 {
		t.Fatal("Qualified did not prefix columns")
	}
	if len(q.Rows) != len(tbl.Rows) {
		t.Fatal("Qualified must share rows")
	}
}

func TestStringRenderings(t *testing.T) {
	tbl := studentTable(t)
	s := tbl.String()
	if !strings.Contains(s, "student") || !strings.Contains(s, "5 rows") {
		t.Errorf("table rendering %q", s)
	}
	if !strings.Contains(tbl.Schema.String(), "name VARCHAR") {
		t.Errorf("schema rendering %q", tbl.Schema)
	}
	if OpGe.String() != ">=" || CmpOp(250).String() == "" {
		t.Error("operator rendering wrong")
	}
}
