package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"textjoin/internal/value"
)

// randPred builds a random predicate over the given schema, depth-bounded.
func randPred(rng *rand.Rand, s *Schema, depth int) Predicate {
	if depth > 0 && rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		kids := make([]Predicate, n)
		for i := range kids {
			kids[i] = randPred(rng, s, depth-1)
		}
		switch rng.Intn(3) {
		case 0:
			return And(kids)
		case 1:
			return Or(kids)
		default:
			return Not{P: kids[0]}
		}
	}
	col := s.Cols[rng.Intn(len(s.Cols))].Name
	op := CmpOp(rng.Intn(6))
	switch rng.Intn(3) {
	case 0:
		return ColConst{Col: col, Op: op, Const: value.Int(int64(rng.Intn(10)))}
	case 1:
		return ColCol{Left: col, Op: op, Right: s.Cols[rng.Intn(len(s.Cols))].Name}
	default:
		return Contains{Col: col, Needle: fmt.Sprintf("w%d", rng.Intn(5))}
	}
}

// TestCompiledEquivalence: a compiled predicate agrees with the
// interpreted evaluation on every row, for random predicates and tables.
func TestCompiledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := MustSchema(
		Column{Name: "a", Kind: value.KindInt},
		Column{Name: "b", Kind: value.KindInt},
		Column{Name: "s", Kind: value.KindString},
	)
	for trial := 0; trial < 200; trial++ {
		pred := randPred(rng, schema, 3)
		cp, err := Compile(pred, schema)
		if err != nil {
			t.Fatalf("trial %d: compile %s: %v", trial, pred, err)
		}
		for row := 0; row < 20; row++ {
			tuple := Tuple{
				value.Int(int64(rng.Intn(10))),
				value.Int(int64(rng.Intn(10))),
				value.String(fmt.Sprintf("w%d w%d", rng.Intn(5), rng.Intn(5))),
			}
			if rng.Intn(10) == 0 {
				tuple[rng.Intn(3)] = value.Null()
			}
			want, err := pred.Eval(schema, tuple)
			if err != nil {
				t.Fatalf("trial %d: interpreted: %v", trial, err)
			}
			got, err := cp.Eval(tuple)
			if err != nil {
				t.Fatalf("trial %d: compiled: %v", trial, err)
			}
			if got != want {
				t.Fatalf("trial %d: pred %s on %v: compiled=%v interpreted=%v",
					trial, pred, tuple, got, want)
			}
		}
	}
}

// TestCompileUnknownColumn: unknown columns fail at compile time with the
// interpreted path's error text.
func TestCompileUnknownColumn(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Kind: value.KindInt})
	for _, pred := range []Predicate{
		ColConst{Col: "nope", Op: OpEq, Const: value.Int(1)},
		ColCol{Left: "a", Op: OpLt, Right: "nope"},
		Contains{Col: "nope", Needle: "x"},
		And{True{}, Not{P: ColConst{Col: "nope", Op: OpEq, Const: value.Int(1)}}},
	} {
		if _, err := Compile(pred, schema); err == nil {
			t.Errorf("Compile(%s) accepted an unknown column", pred)
		}
	}
}

// externalPred is a Predicate type the compiler does not know; it must be
// kept interpreted, not rejected.
type externalPred struct{}

func (externalPred) Eval(s *Schema, t Tuple) (bool, error) { return t[0].AsInt() > 5, nil }
func (externalPred) String() string                        { return "external" }

func TestCompileUnknownTypeFallsBack(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Kind: value.KindInt})
	cp, err := Compile(And{externalPred{}}, schema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cp.Eval(Tuple{value.Int(7)})
	if err != nil || !ok {
		t.Fatalf("fallback eval = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestPredicateColumns(t *testing.T) {
	p := And{
		ColConst{Col: "a", Op: OpGt, Const: value.Int(1)},
		Or{ColCol{Left: "b", Op: OpNe, Right: "c"}, Contains{Col: "a", Needle: "x"}},
		Not{P: True{}},
	}
	cols, ok := PredicateColumns(p)
	if !ok {
		t.Fatal("vocabulary predicate reported unknown")
	}
	want := []string{"a", "b", "c"}
	if len(cols) != len(want) {
		t.Fatalf("cols = %v, want %v", cols, want)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Fatalf("cols = %v, want %v", cols, want)
		}
	}
	if _, ok := PredicateColumns(And{externalPred{}}); ok {
		t.Error("unknown predicate type reported as statically known")
	}
}

// benchTable builds a table for the evaluation benchmarks. Column names
// are unqualified; callers join two Qualified() views of it.
func benchTable(name string, rows int) *Table {
	schema := MustSchema(
		Column{Name: "id", Kind: value.KindInt},
		Column{Name: "grp", Kind: value.KindInt},
		Column{Name: "name", Kind: value.KindString},
		Column{Name: "extra", Kind: value.KindString},
	)
	tbl := NewTable(name, schema)
	for i := 0; i < rows; i++ {
		tbl.MustInsert(Tuple{
			value.Int(int64(i)),
			value.Int(int64(i % 16)),
			value.String(fmt.Sprintf("name-%d", i%97)),
			value.String("padding padding padding"),
		})
	}
	return tbl
}

// BenchmarkPredicateEval compares the per-row interpreted path (name
// lookup per row) against the compiled path (offsets resolved once).
func BenchmarkPredicateEval(b *testing.B) {
	tbl := benchTable("t", 4096)
	pred := And{
		ColConst{Col: "grp", Op: OpEq, Const: value.Int(3)},
		ColCol{Left: "id", Op: OpNe, Right: "grp"},
	}
	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range tbl.Rows {
				if _, err := pred.Eval(tbl.Schema, r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cp := MustCompile(pred, tbl.Schema)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range tbl.Rows {
				if _, err := cp.Eval(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// legacyNestedLoopJoin is the pre-scratch-row formulation, kept here only
// as the benchmark baseline: it concatenates a fresh row per candidate
// pair before evaluating the (interpreted) predicate, even on rejection.
func legacyNestedLoopJoin(left, right *Table, pred Predicate) (*Table, error) {
	schema := left.Schema.Concat(right.Schema)
	out := NewTable(left.Name+"⋈"+right.Name, schema)
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			row := lr.Concat(rr)
			ok, err := pred.Eval(schema, row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// BenchmarkNestedLoopJoin measures the scratch-row nested-loop join (the
// row-path fallback) against the legacy concat-per-candidate-pair
// formulation it replaced; the delta is recorded in EXPERIMENTS.md.
func BenchmarkNestedLoopJoin(b *testing.B) {
	left := benchTable("t", 512).Qualified()
	right := benchTable("u", 512).Qualified()
	pred := ColCol{Left: "t.grp", Op: OpEq, Right: "u.grp"}
	for _, bc := range []struct {
		name string
		join func(l, r *Table, p Predicate) (*Table, error)
	}{
		{"legacy", legacyNestedLoopJoin},
		{"scratch", NestedLoopJoin},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bc.join(left, right, pred)
				if err != nil {
					b.Fatal(err)
				}
				if out.Cardinality() == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkHashJoin measures the scratch-row hash join on the same data.
func BenchmarkHashJoin(b *testing.B) {
	left := benchTable("t", 4096).Qualified()
	right := benchTable("u", 4096).Qualified()
	conds := []EquiJoinCond{{Left: "t.id", Right: "u.id"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := HashJoin(left, right, conds, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out.Cardinality() != 4096 {
			b.Fatalf("join produced %d rows", out.Cardinality())
		}
	}
}
