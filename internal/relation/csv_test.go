package relation

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"textjoin/internal/value"
)

const sampleCSV = `name, area, year:int, gpa:float, funded:bool
Gravano, AI, 4, 3.9, true
Kao, DB, 2, 3.5, false
Pham, , 5, , true
`

func TestLoadCSV(t *testing.T) {
	tbl, err := LoadCSV("student", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cardinality() != 3 {
		t.Fatalf("rows = %d", tbl.Cardinality())
	}
	s := tbl.Schema
	if s.Cols[0].Kind != value.KindString || s.Cols[2].Kind != value.KindInt ||
		s.Cols[3].Kind != value.KindFloat || s.Cols[4].Kind != value.KindBool {
		t.Fatalf("schema = %v", s)
	}
	if s.ColumnIndex("year") != 2 {
		t.Fatalf("typed header not stripped: %v", s)
	}
	if tbl.Rows[0][2].AsInt() != 4 || tbl.Rows[0][3].AsFloat() != 3.9 || !tbl.Rows[0][4].AsBool() {
		t.Fatalf("row 0 = %v", tbl.Rows[0])
	}
	// Empty cells are NULL.
	if !tbl.Rows[2][1].IsNull() || !tbl.Rows[2][3].IsNull() {
		t.Fatalf("row 2 = %v", tbl.Rows[2])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	bad := []string{
		"",
		"a:int\nnotanumber",
		"a:float\nnotafloat",
		"a:bool\nnotabool",
		"a:zigzag\n1",
		"a,a\n1,2",
		"a,b\nonly-one-cell-mismatch",
	}
	for _, src := range bad {
		if _, err := LoadCSV("t", strings.NewReader(src)); err == nil {
			t.Errorf("LoadCSV(%q) succeeded", src)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl, err := LoadCSV("student", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("student", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cardinality() != tbl.Cardinality() || back.Schema.String() != tbl.Schema.String() {
		t.Fatalf("round trip changed the table:\n%v\n%v", tbl.Schema, back.Schema)
	}
	for i := range tbl.Rows {
		for j := range tbl.Rows[i] {
			if !value.Equal(tbl.Rows[i][j], back.Rows[i][j]) {
				t.Fatalf("cell (%d,%d) changed: %v vs %v", i, j, tbl.Rows[i][j], back.Rows[i][j])
			}
		}
	}
}

func TestLoadCSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadCSVFile("student", path)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "student" || tbl.Cardinality() != 3 {
		t.Fatalf("table = %v", tbl)
	}
	if _, err := LoadCSVFile("x", filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
