// Quickstart: index a handful of documents, load a relation, and run the
// same foreign join with every execution method of the paper, comparing
// their costs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"textjoin/internal/join"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the external text source: a tiny bibliographic collection.
	ix := textidx.NewIndex()
	docs := []textidx.Document{
		{ExtID: "CSTR-001", Fields: map[string]string{
			"title": "Belief Update in Knowledge Bases", "author": "Radhika", "year": "1993"}},
		{ExtID: "CSTR-002", Fields: map[string]string{
			"title": "Text Retrieval with Inverted Files", "author": "Gravano Garcia", "year": "1994"}},
		{ExtID: "CSTR-003", Fields: map[string]string{
			"title": "Filtering Text Streams", "author": "Kao", "year": "1994"}},
		{ExtID: "CSTR-004", Fields: map[string]string{
			"title": "Distributed Query Processing", "author": "Garcia", "year": "1994"}},
		{ExtID: "CSTR-005", Fields: map[string]string{
			"title": "Text Indexing", "author": "Gravano", "year": "1995"}},
	}
	for _, d := range docs {
		ix.MustAdd(d)
	}
	ix.Freeze()

	// 2. Load the structured side: Garcia's students.
	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
	))
	for _, n := range []string{"Gravano", "Kao", "DeSmedt", "Pham"} {
		student.MustInsert(relation.Tuple{value.String(n)})
	}

	// 3. The query (the paper's Q2): docids of reports with 'text' in the
	// title written by one of the students.
	spec := &join.Spec{
		Relation: student,
		Preds:    []join.Pred{{Column: "name", Field: "author"}},
		TextSel:  textidx.Term{Field: "title", Word: "text"},
	}

	// 4. Run every applicable method; all return identical rows.
	methods := []join.Method{join.TS{}, join.RTP{}, join.SJRTP{}}
	fmt.Println("method    searches  postings  cost(s)  rows")
	for _, m := range methods {
		svc, err := texservice.NewLocal(ix,
			texservice.WithShortFields("title", "author", "year"))
		if err != nil {
			return err
		}
		res, err := m.Execute(context.Background(), spec, svc)
		if err != nil {
			return err
		}
		u := res.Stats.Usage
		fmt.Printf("%-10s%8d%10d%9.2f%6d\n",
			m.Name(), u.Searches, u.Postings, u.Cost, res.Stats.ResultRows)
	}

	// 5. Show the actual matches.
	svc, err := texservice.NewLocal(ix, texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		return err
	}
	res, err := join.SJRTP{}.Execute(context.Background(), spec, svc)
	if err != nil {
		return err
	}
	fmt.Println("\nmatches (student, docid):")
	for _, row := range res.Table.Rows {
		fmt.Printf("  %-10s %s\n", row[0].Text(), row[1].Text())
	}
	return nil
}
