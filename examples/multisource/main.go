// Multisource — §8's "beyond text systems" generalization: one query
// joining a relation with TWO independent external sources (a technical-
// report archive and a patent database), each behind its own service with
// its own cost meter. The optimizer places each foreign join separately
// in the plan and picks a method per source.
//
//	go run ./examples/multisource
package main

import (
	"fmt"
	"log"
	"os"

	"textjoin/internal/core"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Source 1: the report archive.
	reports := textidx.NewIndex()
	for _, d := range []struct{ id, title, author string }{
		{"R-101", "adaptive stream filtering", "garcia"},
		{"R-102", "cost based query optimization", "selinger"},
		{"R-103", "adaptive query processing", "garcia widom"},
		{"R-104", "text indexing structures", "zobel"},
	} {
		reports.MustAdd(textidx.Document{ExtID: d.id, Fields: map[string]string{
			"title": d.title, "author": d.author}})
	}
	reports.Freeze()

	// Source 2: the patent database — different fields, different system.
	patents := textidx.NewIndex()
	for _, d := range []struct{ id, abstract, inventor string }{
		{"US-1", "an apparatus for adaptive filtering of data streams", "garcia"},
		{"US-2", "a method for cost based optimization of database queries", "selinger"},
		{"US-3", "compressed text indexing", "zobel moffat"},
	} {
		patents.MustAdd(textidx.Document{ExtID: d.id, Fields: map[string]string{
			"abstract": d.abstract, "inventor": d.inventor}})
	}
	patents.Freeze()

	svcReports, err := texservice.NewLocal(reports, texservice.WithShortFields("title", "author"))
	if err != nil {
		return err
	}
	svcPatents, err := texservice.NewLocal(patents, texservice.WithShortFields("abstract", "inventor"))
	if err != nil {
		return err
	}

	// The structured side: researchers and their topics.
	researcher := relation.NewTable("researcher", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "topic", Kind: value.KindString},
	))
	for _, r := range [][2]string{
		{"garcia", "filtering"}, {"selinger", "optimization"},
		{"zobel", "indexing"}, {"newhire", "networking"},
	} {
		researcher.MustInsert(relation.Tuple{value.String(r[0]), value.String(r[1])})
	}

	eng := core.NewEngine()
	if err := eng.RegisterTable(researcher); err != nil {
		return err
	}
	if err := eng.RegisterTextSource("reports", svcReports, "title", "author"); err != nil {
		return err
	}
	if err := eng.RegisterTextSource("patents", svcPatents, "abstract", "inventor"); err != nil {
		return err
	}

	// Who has both published AND patented on their own topic?
	p, err := eng.Prepare(`select researcher.name, reports.docid, patents.docid
		from researcher, reports, patents
		where researcher.name in reports.author
		and researcher.topic in reports.title
		and researcher.name in patents.inventor
		and researcher.topic in patents.abstract`)
	if err != nil {
		return err
	}
	fmt.Println("plan (two foreign joins, one per source):")
	fmt.Fprint(os.Stdout, p.Explain())

	res, err := p.Run()
	if err != nil {
		return err
	}
	fmt.Printf("\n%d matches; combined usage: %d searches (%d probes), simulated cost %.2fs\n\n",
		res.Table.Cardinality(), res.Usage.Searches, res.Probes, res.Usage.Cost)
	for _, row := range res.Table.Rows {
		fmt.Printf("  %-10s report %-6s patent %s\n",
			row[0].Text(), row[1].Text(), row[2].Text())
	}
	return nil
}
