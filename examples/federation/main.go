// Federation — the fully loose integration over a real network boundary:
// a Boolean text retrieval server is started on a TCP port (as
// cmd/textserve would be), the database side connects as a client that
// only sees Search/Retrieve operations, and the paper's Q2 semi-join runs
// across the wire. The per-invocation network round trips are exactly the
// overhead the paper's c_i constant models.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"

	"textjoin/internal/join"
	"textjoin/internal/relation"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
	"textjoin/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Server side: the external text system. ---
	corpus := workload.NewCorpus(workload.CorpusConfig{Docs: 500, Seed: 9})
	local, err := texservice.NewLocal(corpus.Index,
		texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		return err
	}
	srv := texservice.NewServer(local)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("text server: %d documents on %s\n", corpus.Index.NumDocs(), addr)

	// --- Client side: the database system, loosely integrated. ---
	remote, err := texservice.Dial(addr, nil)
	if err != nil {
		return err
	}
	defer remote.Close()
	n, err := remote.NumDocs()
	if err != nil {
		return err
	}
	fmt.Printf("client connected: D=%d, M=%d, short form=%v\n\n",
		n, remote.MaxTerms(), remote.ShortFields())

	// Garcia's students: half of them are publishing authors.
	student := relation.NewTable("student", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
	))
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("offcampus%02d", i)
		if i%2 == 0 {
			name = corpus.Authors[i*3]
		}
		student.MustInsert(relation.Tuple{value.String(name)})
	}

	// Q2 over the wire: docids of 'text'-titled reports by the students.
	spec := &join.Spec{
		Relation: student,
		Preds:    []join.Pred{{Column: "name", Field: "author"}},
		TextSel:  textidx.Term{Field: "title", Word: "text"},
	}
	for _, m := range []join.Method{join.TS{}, join.SJRTP{}} {
		remote.Meter().Reset()
		res, err := m.Execute(context.Background(), spec, remote)
		if err != nil {
			return err
		}
		u := res.Stats.Usage
		fmt.Printf("%-8s %2d network round trips, %4d postings processed remotely, simulated cost %6.2fs, %d rows\n",
			m.Name(), u.Searches, u.Postings, u.Cost, res.Stats.ResultRows)
	}

	// The semi-join's single batched query did the same work in one
	// round trip per 35 students; with a WAN-class c_i that is the
	// difference the paper measured.
	return nil
}
