// Hospital information system — the paper's motivating scenario (§1,
// [YA94]): physicians combine structured patient records with medical
// literature held in an external text system. The example runs the same
// diagnosis-literature join with tuple substitution (what [YA94] actually
// did) and with the paper's methods, showing why the techniques matter.
//
//	go run ./examples/hospital
package main

import (
	"context"
	"fmt"
	"log"

	"textjoin/internal/join"
	"textjoin/internal/relation"
	"textjoin/internal/stats"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The external medical literature source.
	ix := textidx.NewIndex()
	articles := []struct{ id, title, mesh, journal string }{
		{"PMID-01", "Beta blockers in chronic hypertension", "hypertension beta blockers", "cardiology"},
		{"PMID-02", "Insulin therapy outcomes in type two diabetes", "diabetes insulin", "endocrinology"},
		{"PMID-03", "Migraine prophylaxis with beta blockers", "migraine beta blockers", "neurology"},
		{"PMID-04", "Asthma management in adolescents", "asthma bronchodilator", "pulmonology"},
		{"PMID-05", "Hypertension and renal disease", "hypertension renal", "nephrology"},
		{"PMID-06", "Statin interactions in diabetes care", "diabetes statins", "endocrinology"},
		{"PMID-07", "Cognitive therapy for chronic migraine", "migraine therapy", "neurology"},
		{"PMID-08", "Advances in asthma immunotherapy", "asthma immunotherapy", "pulmonology"},
	}
	for _, a := range articles {
		ix.MustAdd(textidx.Document{ExtID: a.id, Fields: map[string]string{
			"title": a.title, "mesh": a.mesh, "journal": a.journal,
		}})
	}
	ix.Freeze()

	// The structured side: the ward's current patients.
	patient := relation.NewTable("patient", relation.MustSchema(
		relation.Column{Name: "name", Kind: value.KindString},
		relation.Column{Name: "diagnosis", Kind: value.KindString},
		relation.Column{Name: "ward", Kind: value.KindString},
	))
	for _, p := range [][3]string{
		{"Adams", "hypertension", "3E"},
		{"Baker", "diabetes", "3E"},
		{"Chen", "migraine", "3E"},
		{"Diaz", "sciatica", "3E"}, // no literature on file
		{"Evans", "hypertension", "2W"},
	} {
		patient.MustInsert(relation.Tuple{
			value.String(p[0]), value.String(p[1]), value.String(p[2])})
	}
	ward3E, err := patient.Select(relation.ColConst{
		Col: "ward", Op: relation.OpEq, Const: value.String("3E")})
	if err != nil {
		return err
	}

	// Query: for each ward-3E patient, the recent literature whose MeSH
	// terms mention the diagnosis — a foreign join diagnosis in mesh.
	spec := &join.Spec{
		Relation:  ward3E,
		Preds:     []join.Pred{{Column: "diagnosis", Field: "mesh"}},
		LongForm:  true,
		DocFields: []string{"title", "journal"},
	}

	svcFor := func() (*texservice.Local, error) {
		return texservice.NewLocal(ix, texservice.WithShortFields("title", "mesh"))
	}

	// The cost model picks the cheapest method for this join.
	estSvc, err := svcFor()
	if err != nil {
		return err
	}
	est := stats.New(estSvc, stats.WithSampleSize(100))
	method, params, predicted, err := est.ChooseMethod(spec, 1)
	if err != nil {
		return err
	}
	fmt.Printf("cost model: N=%d, s=%.2f, f=%.2f → chose %s (predicted %.2fs)\n\n",
		params.N, params.Preds[0].Sel, params.Preds[0].Fanout, method.Name(), predicted)

	// Compare against plain tuple substitution.
	for _, m := range []join.Method{join.TS{}, method} {
		svc, err := svcFor()
		if err != nil {
			return err
		}
		if err := m.Applicable(spec, svc); err != nil {
			fmt.Printf("%-10s inapplicable: %v\n", m.Name(), err)
			continue
		}
		res, err := m.Execute(context.Background(), spec, svc)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %d searches, simulated cost %5.2fs, %d rows\n",
			m.Name(), res.Stats.Usage.Searches, res.Stats.Usage.Cost, res.Stats.ResultRows)
	}

	// The physician's view.
	svc, err := svcFor()
	if err != nil {
		return err
	}
	res, err := method.Execute(context.Background(), spec, svc)
	if err != nil {
		return err
	}
	fmt.Println("\nward 3E literature matches:")
	schema := res.Table.Schema
	nameIdx := schema.ColumnIndex("name")
	titleIdx := schema.ColumnIndex("title")
	journalIdx := schema.ColumnIndex("journal")
	for _, row := range res.Table.Rows {
		fmt.Printf("  %-7s %-50s (%s)\n",
			row[nameIdx].Text(), row[titleIdx].Text(), row[journalIdx].Text())
	}
	return nil
}
