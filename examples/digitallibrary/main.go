// Digital library — the paper's multi-join scenario (§6, Q5): find
// documents co-authored by a student and a faculty member from another
// department. The example optimizes the query in the traditional
// left-deep space and in the extended PrL space, explains both plans, and
// executes them, showing the probe-as-semi-join reduction at work.
//
//	go run ./examples/digitallibrary
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"textjoin/internal/exec"
	"textjoin/internal/optimizer"
	"textjoin/internal/plan"
	"textjoin/internal/sqlparse"
	"textjoin/internal/stats"
	"textjoin/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := workload.Q5(workload.DefaultQ5())
	if err != nil {
		return err
	}
	fmt.Println("query:")
	fmt.Println(" ", w.Query)

	q, err := sqlparse.Parse(w.Query)
	if err != nil {
		return err
	}
	a, err := sqlparse.Analyze(q, w.Catalog)
	if err != nil {
		return err
	}

	for _, mode := range []optimizer.Mode{optimizer.ModeTraditional, optimizer.ModePrL} {
		svc, err := w.Service()
		if err != nil {
			return err
		}
		est := stats.New(svc, stats.WithSampleSize(1000))
		opts := optimizer.DefaultOptions()
		opts.Mode = mode
		o, err := optimizer.New(a, w.Catalog, svc, est, opts)
		if err != nil {
			return err
		}
		res, err := o.Optimize()
		if err != nil {
			return err
		}
		fmt.Printf("\n=== %s space (estimated cost %.1fs) ===\n", mode, res.EstCost)
		plan.Explain(os.Stdout, res.Plan)

		runSvc, err := w.Service()
		if err != nil {
			return err
		}
		ex := &exec.Executor{Cat: w.Catalog, Svc: runSvc}
		out, st, err := ex.Run(context.Background(), res.Plan)
		if err != nil {
			return err
		}
		fmt.Printf("executed: %d rows, %d searches (%d probes), simulated cost %.1fs\n",
			out.Cardinality(), st.Usage.Searches, st.Probes, st.Usage.Cost)
		if mode == optimizer.ModePrL && out.Cardinality() > 0 {
			fmt.Println("sample co-authored reports:")
			for i, row := range out.Rows {
				if i == 5 {
					break
				}
				fmt.Printf("  %s — %s\n", row[0].Text(), row[1].Text())
			}
		}
	}
	return nil
}
