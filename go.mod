module textjoin

go 1.22
