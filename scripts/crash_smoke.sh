#!/bin/sh
# crash_smoke.sh — end-to-end crash-recovery smoke for live ingest:
# start textserve with a WAL directory, ingest a document over the wire,
# kill -9 the server, restart it on the same directory, and require the
# acknowledged document to be queryable again. An ack means the write
# reached the fsynced log, so it must survive the crash.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/textserve" ./cmd/textserve
go build -o "$tmp/fedql" ./cmd/fedql

addr=127.0.0.1:7987

start_server() {
    "$tmp/textserve" -addr "$addr" -docs 50 -ingest-dir "$tmp/wal" &
    pid=$!
}

wait_ready() {
    i=0
    while ! "$tmp/fedql" -remote "$addr" -search "title='zzznosuchterm'" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 100 ]; then
            echo "crash_smoke: server on $addr never became ready" >&2
            exit 1
        fi
        sleep 0.1
    done
}

start_server
wait_ready

# Ingest one document and require the durable acknowledgement.
"$tmp/fedql" -remote "$addr" -ingest \
    '[{"kind":"put","ext":"crash-1","fields":{"title":"crash smoke survivor","author":"smoke","year":"1996"}}]'

# Visible before the crash.
"$tmp/fedql" -remote "$addr" -search "title='survivor'" | grep -q '^crash-1$'

# Crash hard: no shutdown path, no final flush.
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Restart over the same directory: WAL replay must bring the doc back.
start_server
wait_ready
"$tmp/fedql" -remote "$addr" -search "title='survivor'" | grep -q '^crash-1$'

echo "crash_smoke: acked write survived kill -9 and WAL replay"
