#!/bin/sh
# check.sh — the repository's full verification gate:
#   formatting + build + vet + unit tests + race-detector pass.
# Tier-1 (go build && go test) is the fast subset; this script is what a
# change must pass before merging.
set -eux

cd "$(dirname "$0")/.."

# Formatting gate: gofmt must have nothing to rewrite.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Quick race-detector smoke of the sharded federation before the full runs.
go test -run TestShardedSmoke -race ./internal/shard

# Batched probe pushdown equivalence harness under the race detector:
# probing methods × {per-tuple, batched} × 1/2/4-shard federations with
# injected faults, checked against the naive oracle and the exact
# query-meter mirroring invariant. The seed is fixed in the test
# (batchPropertySeed) so failures reproduce; -short caps the trial count
# here, the full-trial run happens in the go test -race ./... pass below.
go test -race -short -run 'TestBatchedProbing|TestBatchProbe' ./internal/join

# Gateway concurrency suite under the race detector: equivalence,
# saturation shedding, budgets, drain.
go vet ./cmd/queryd ./internal/gateway ./internal/loadgen ./internal/appcfg
go test -race -run Gateway ./internal/gateway

# Observability gates: the span recorder must be race-clean under
# concurrent recording/snapshotting, and the /metrics exposition must
# parse as Prometheus text format (line-grammar validator, no deps) —
# including the trace-store series and histogram bucket exemplars.
go test -race ./internal/obs
go test -race -run 'Metrics|Analyze|SlowQuery' ./internal/gateway

# Distributed-tracing gates, all under the race detector:
# 1. Trace-propagation smoke: a federation whose client links fail 30%
#    of calls transiently must still produce a backend-grafted remote
#    span under every scatter leg (per-leg retries re-ask until a reply
#    carries the server subtree).
# 2. Remote span return over the wire: version negotiation, skew-proof
#    grafting, spans on error replies.
# 3. Trace ring soak: concurrent queries hammer the tail-sampled store
#    while /traces and /trace/{id} are polled; plus the tentpole 2x2
#    sharded+replicated hedged-query trace acceptance test.
go test -race -run 'TestTracePropagationUnderFaults' ./internal/shard
go test -race -run 'Span' ./internal/texservice
go test -race -run 'TestTraceRingConcurrent|TestShardedReplicatedHedgedTrace|TestTraceStore' ./internal/gateway
go test -race ./internal/telemetry

# Tracing overhead evidence: the disabled span path must stay in the
# single-digit-ns / zero-alloc regime, and the trace experiment must
# emit its machine-readable result file.
go test -run 'TestDisabledSpanPathBudget' ./internal/bench
go run ./cmd/benchrun -exp trace
test -s BENCH_trace.json

# Vectorized execution gates. The equivalence harness runs every join
# method on the same pruned plans through both engines (vectorized and
# row) against the naive oracle, over faulty 1/2/4-shard federations,
# under the race detector; the seed is fixed (vectorPropertySeed) so
# failures reproduce. -short caps the trial count here, the full-trial
# run happens in the go test -race ./... pass below.
go test -race -short -run 'TestVectorizedEquivalence' ./internal/exec

# Allocation regression gate: the steady-state batch path (scan → select
# → project) must not allocate per Next once the pipeline is warm.
go test -run 'TestSteadyStateAllocs' ./internal/vec

# Live-ingest gates: the WAL torture tests (torn tail, corrupt CRC,
# double replay), the model-based store property test, snapshot
# isolation, cache-staleness regression and the live join-equivalence
# suite, all under the race detector.
go test -race ./internal/ingest/...
go test -race -run 'TestLiveIngest' ./internal/join

# Crash-recovery smoke: start textserve with a WAL directory, ingest a
# document over the wire, kill -9 the server mid-flight, restart it on
# the same directory, and require the acked document to be queryable.
./scripts/crash_smoke.sh

# Replica routing gates, both under the race detector:
# 1. Failover: all five join methods stay equivalent to the naive
#    oracle over replicated fleets with one replica per partition
#    killed mid-query, plus ejection/probe re-admission behavior.
# 2. Hedge-cancellation leak check: 1000 hedged calls against remote
#    replicas must drain in-flight counts to zero and return goroutine
#    and pooled-connection counts to baseline — a lost cancel or an
#    unconsumed loser attempt fails this.
go test -race -run 'TestJoinMethodsOverReplicated|TestFailover|TestProbeReadmission' ./internal/replica
go test -race -run 'TestHedgeCancellationNoLeaks' ./internal/replica

# Benchmarks must at least compile and run one iteration — they are the
# before/after evidence for the execution core and rot silently otherwise.
go test -run 'NOTESTS' -bench . -benchtime 1x ./internal/vec ./internal/relation

go test ./...
go test -race ./...
