// Package textjoin_test holds the repository-level benchmarks: one
// benchmark per table/figure of the paper's evaluation (§7), measuring
// real wall time of the same executions whose simulated costs benchrun
// reports, plus throughput benchmarks for the substrates.
//
//	go test -bench=. -benchmem
package textjoin_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"textjoin/internal/bench"
	"textjoin/internal/cost"
	"textjoin/internal/exec"
	"textjoin/internal/join"
	"textjoin/internal/optimizer"
	"textjoin/internal/sqlparse"
	"textjoin/internal/stats"
	"textjoin/internal/texservice"
	"textjoin/internal/textidx"
	"textjoin/internal/workload"
)

var benchCorpus = workload.NewCorpus(workload.CorpusConfig{Docs: 2000, Seed: 42})

// BenchmarkTable2 measures each join method on each paper query — the
// wall-clock counterpart of Table 2.
func BenchmarkTable2(b *testing.B) {
	scenarios, err := workload.PaperOperatingPoints(benchCorpus)
	if err != nil {
		b.Fatal(err)
	}
	for _, sc := range scenarios {
		estSvc, err := sc.Service()
		if err != nil {
			b.Fatal(err)
		}
		est := stats.New(estSvc, stats.WithSampleSize(10000))
		params, err := est.BuildParams(sc.Spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range cost.AllMethods {
			if !params.Applicable(m) {
				continue
			}
			method, err := stats.InstantiateMethod(sc.Spec, params, m)
			if err != nil {
				b.Fatal(err)
			}
			svc, err := sc.Service()
			if err != nil {
				b.Fatal(err)
			}
			if err := method.Applicable(sc.Spec, svc); err != nil {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", sc.Name, m), func(b *testing.B) {
				var simCost float64
				for i := 0; i < b.N; i++ {
					svc.Meter().Reset()
					res, err := method.Execute(bg, sc.Spec, svc)
					if err != nil {
						b.Fatal(err)
					}
					simCost = res.Stats.Usage.Cost
				}
				b.ReportMetric(simCost, "simsec")
			})
		}
	}
}

// BenchmarkFigure1A regenerates the Figure 1(A) cost curves.
func BenchmarkFigure1A(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1A(benchCorpus, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1B regenerates the Figure 1(B) cost curves.
func BenchmarkFigure1B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure1B(benchCorpus, 60, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the Figure 2 winner map.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(benchCorpus, 20, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiJoinQ5 measures optimizing + executing Q5 per optimizer
// mode — the wall-clock counterpart of the §6 experiment.
func BenchmarkMultiJoinQ5(b *testing.B) {
	w, err := workload.Q5(workload.DefaultQ5())
	if err != nil {
		b.Fatal(err)
	}
	q, err := sqlparse.Parse(w.Query)
	if err != nil {
		b.Fatal(err)
	}
	a, err := sqlparse.Analyze(q, w.Catalog)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []optimizer.Mode{
		optimizer.ModeTraditional, optimizer.ModePrLGreedy, optimizer.ModePrL,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				svc, err := w.Service()
				if err != nil {
					b.Fatal(err)
				}
				est := stats.New(svc, stats.WithSampleSize(10000))
				opts := optimizer.DefaultOptions()
				opts.Mode = mode
				o, err := optimizer.New(a, w.Catalog, svc, est, opts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := o.Optimize()
				if err != nil {
					b.Fatal(err)
				}
				ex := &exec.Executor{Cat: w.Catalog, Svc: svc}
				if _, _, err := ex.Run(bg, res.Plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerOverhead measures enumeration effort as the relation
// count grows (§6's complexity discussion).
func BenchmarkOptimizerOverhead(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		w, err := workload.Chain(workload.ChainConfig{Relations: n, RowsEach: 30, Docs: 40, Seed: int64(n)})
		if err != nil {
			b.Fatal(err)
		}
		q, err := sqlparse.Parse(w.Query)
		if err != nil {
			b.Fatal(err)
		}
		a, err := sqlparse.Analyze(q, w.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []optimizer.Mode{optimizer.ModeTraditional, optimizer.ModePrL} {
			svc, err := w.Service()
			if err != nil {
				b.Fatal(err)
			}
			est := stats.New(svc, stats.WithSampleSize(10000))
			b.Run(fmt.Sprintf("n=%d/%s", n, mode), func(b *testing.B) {
				var tasks int
				for i := 0; i < b.N; i++ {
					opts := optimizer.DefaultOptions()
					opts.Mode = mode
					o, err := optimizer.New(a, w.Catalog, svc, est, opts)
					if err != nil {
						b.Fatal(err)
					}
					res, err := o.Optimize()
					if err != nil {
						b.Fatal(err)
					}
					tasks = res.JoinTasks
				}
				b.ReportMetric(float64(tasks), "jointasks")
			})
		}
	}
}

// BenchmarkIndexBuild measures inverted-index construction throughput.
func BenchmarkIndexBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.NewCorpus(workload.CorpusConfig{Docs: 1000, Seed: int64(i + 1)})
	}
}

// BenchmarkSearch measures single-term and conjunctive search latency on
// the frozen index.
func BenchmarkSearch(b *testing.B) {
	svc, err := texservice.NewLocal(benchCorpus.Index,
		texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		b.Fatal(err)
	}
	queries := map[string]textidx.Expr{
		"term":   textidx.Term{Field: "title", Word: "text"},
		"phrase": textidx.Phrase{Field: "title", Words: []string{"belief", "update"}},
		"conjunction": textidx.And{
			textidx.Term{Field: "title", Word: "text"},
			textidx.Term{Field: "year", Word: "1994"},
		},
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Search(bg, q, texservice.FormShort); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemoteSearch measures the network round trip of the remote
// service — the physical counterpart of the invocation cost c_i.
func BenchmarkRemoteSearch(b *testing.B) {
	local, err := texservice.NewLocal(benchCorpus.Index,
		texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		b.Fatal(err)
	}
	srv := texservice.NewServer(local)
	srv.Logf = b.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	remote, err := texservice.Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Close()
	q := textidx.Term{Field: "author", Word: benchCorpus.Authors[0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := remote.Search(bg, q, texservice.FormShort); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelTSOverLatency measures tuple substitution against a
// remote server with simulated WAN latency, sequential vs a worker pool:
// independent substituted searches overlap, so wall time drops by roughly
// the worker count while the simulated cost (resource usage) is
// unchanged.
func BenchmarkParallelTSOverLatency(b *testing.B) {
	local, err := texservice.NewLocal(benchCorpus.Index,
		texservice.WithShortFields("title", "author", "year"))
	if err != nil {
		b.Fatal(err)
	}
	srv := texservice.NewServer(local)
	srv.Logf = b.Logf
	srv.Latency = 2 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	sc, err := benchCorpus.Q2(workload.Q2Config{N: 30, S1: 0.5, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// Each goroutine needs its own connection to overlap requests.
			conns := make([]texservice.Service, workers)
			for i := range conns {
				r, err := texservice.Dial(addr, nil)
				if err != nil {
					b.Fatal(err)
				}
				defer r.Close()
				conns[i] = r
			}
			svc := roundRobin{conns: conns, n: new(atomic.Uint64)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (join.TS{Workers: workers}).Execute(bg, sc.Spec, svc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// roundRobin fans Search calls out over several connections so parallel
// workers are not serialized on one socket.
type roundRobin struct {
	conns []texservice.Service
	n     *atomic.Uint64
}

func (r roundRobin) pick() texservice.Service {
	return r.conns[int(r.n.Add(1))%len(r.conns)]
}

func (r roundRobin) Search(ctx context.Context, e textidx.Expr, f texservice.Form) (*texservice.Result, error) {
	return r.pick().Search(ctx, e, f)
}
func (r roundRobin) Retrieve(ctx context.Context, id textidx.DocID) (textidx.Document, error) {
	return r.pick().Retrieve(ctx, id)
}
func (r roundRobin) NumDocs() (int, error)    { return r.conns[0].NumDocs() }
func (r roundRobin) MaxTerms() int            { return r.conns[0].MaxTerms() }
func (r roundRobin) ShortFields() []string    { return r.conns[0].ShortFields() }
func (r roundRobin) Meter() *texservice.Meter { return r.conns[0].Meter() }

// BenchmarkJoinMethodsScaling measures how TS and SJ+RTP scale with the
// relation size on a fixed corpus.
func BenchmarkJoinMethodsScaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		sc, err := benchCorpus.Q2(workload.Q2Config{N: n, S1: 0.5, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []join.Method{join.TS{}, join.SJRTP{}} {
			b.Run(fmt.Sprintf("%s/n=%d", m.Name(), n), func(b *testing.B) {
				svc, err := sc.Service()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := m.Execute(bg, sc.Spec, svc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
